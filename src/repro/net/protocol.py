"""The wire protocol shared by the server, the clients, and the fuzz tier.

Everything on the socket is a **frame** — the same torn-frame discipline
the shared-memory plane uses (:mod:`repro.api.shm_plane`):

* frame   = ``length | crc32 | payload`` (``>II`` header, network order);
* payload = ``body_tag | header_length`` (``>BI``) + a JSON message header
  + an optional binary body.

The body carries batches — keys, ``(key, value)`` pairs, result values —
encoded with :class:`repro.storage.encoding.RecordCodec` fixed-width runs
(the same tagged union the snapshots, op logs and shm rings persist)
whenever every value is *exactly* representable, a packed bitmap for
membership replies, and a per-batch pickle fallback otherwise — the same
fallback contract as :class:`~repro.api.shm_plane.BatchCodec`.  The wire
stays as history-independent as the structures behind it: record runs are
canonical encodings of the values alone, and frames carry no timestamps,
sequence gaps, or other operational residue.

A frame that fails its length or CRC check, truncates mid-read, or holds
an undecodable message raises :class:`~repro.errors.ProtocolError` — the
connection is then done, never hung and never a source of garbage.
"""

from __future__ import annotations

import asyncio
import json
import pickle
import struct
import zlib
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from repro.api.shm_plane import BatchCodec
from repro.errors import (
    AllocationError,
    CapacityError,
    ConfigurationError,
    DuplicateKey,
    InvariantViolation,
    KeyNotFound,
    ProtocolError,
    RankError,
    RemoteError,
    ReplicationError,
    ReproError,
    ServerBusyError,
    WorkerCrashError,
)

#: Wire protocol version, exchanged at handshake.
PROTOCOL_VERSION = 1

#: Frame header: payload length, CRC-32 of the payload (as in the shm plane).
FRAME_HEADER = struct.Struct(">II")

#: Message prologue inside a frame: body codec tag, JSON header length.
MESSAGE_HEADER = struct.Struct(">BI")

#: Hard ceiling on a frame payload; an honest client never needs more, and
#: a corrupt or malicious length field must not turn into an allocation.
MAX_PAYLOAD = 8 * 1024 * 1024

#: Body codecs.
BODY_NONE = 0      #: no body
BODY_RECORDS = 1   #: RecordCodec run, ``count`` fixed-width records
BODY_BITMAP = 2    #: packed booleans, ``count`` flags
BODY_PICKLE = 3    #: pickled list (the per-batch fallback)

#: Optional request-header key carrying a trace propagation header: a JSON
#: object of ``{"trace": <id>, "span": <id>}`` (see
#: :mod:`repro.obs.tracing`).  A server that sees it adopts the trace —
#: its server-side span (and the engine spans beneath it) carry the
#: client's trace id — and echoes the id back under the same key in the
#: reply so a client can correlate without trusting ordering.  Absent on
#: untraced requests; an unknown or malformed value is ignored, never an
#: error, because telemetry must not be able to fail a request.
TRACE_KEY = "trace"

#: Reply statuses.
STATUS_OK = "ok"
STATUS_BUSY = "busy"      #: shed by admission control; nothing executed
STATUS_ERROR = "error"    #: typed error, original class name + message

#: Error classes the client reconstructs by name; anything else arrives as
#: :class:`~repro.errors.RemoteError` carrying the original name + message.
ERROR_TYPES: Dict[str, type] = {
    cls.__name__: cls
    for cls in (AllocationError, CapacityError, ConfigurationError,
                DuplicateKey, InvariantViolation, KeyNotFound,
                ProtocolError, RankError, ReplicationError, ReproError,
                ServerBusyError, WorkerCrashError)
}


# --------------------------------------------------------------------------- #
# Framing
# --------------------------------------------------------------------------- #

def frame(payload: bytes) -> bytes:
    """One wire frame: ``length | crc32 | payload``."""
    if len(payload) > MAX_PAYLOAD:
        raise ProtocolError(
            "frame payload of %d bytes exceeds the %d-byte protocol "
            "ceiling" % (len(payload), MAX_PAYLOAD))
    return FRAME_HEADER.pack(len(payload), zlib.crc32(payload)) + payload


def check_frame(header: bytes, payload: bytes) -> bytes:
    """Validate a received frame's header against its payload."""
    length, crc = FRAME_HEADER.unpack(header)
    if len(payload) != length:
        raise ProtocolError(
            "frame truncated: header says %d payload byte(s), got %d"
            % (length, len(payload)))
    if zlib.crc32(payload) != crc:
        raise ProtocolError(
            "frame CRC mismatch: the stream is torn or corrupted")
    return payload


def _checked_length(header: bytes, max_payload: int) -> Tuple[int, int]:
    if len(header) != FRAME_HEADER.size:
        raise ProtocolError(
            "connection dropped mid-frame (%d of %d header bytes)"
            % (len(header), FRAME_HEADER.size))
    length, crc = FRAME_HEADER.unpack(header)
    if length > max_payload:
        raise ProtocolError(
            "frame announces %d payload byte(s), over the %d-byte limit"
            % (length, max_payload))
    return length, crc


async def read_frame_async(reader: asyncio.StreamReader,
                           max_payload: int = MAX_PAYLOAD
                           ) -> Optional[bytes]:
    """The next frame payload, ``None`` on clean EOF between frames.

    Raises :class:`~repro.errors.ProtocolError` for every unclean ending:
    a disconnect mid-frame, an oversized announced length, or a payload
    whose CRC disagrees with the header.
    """
    try:
        header = await reader.readexactly(FRAME_HEADER.size)
    except asyncio.IncompleteReadError as error:
        if not error.partial:
            return None
        raise ProtocolError(
            "connection dropped mid-frame (%d of %d header bytes)"
            % (len(error.partial), FRAME_HEADER.size)) from error
    length, crc = _checked_length(header, max_payload)
    try:
        payload = await reader.readexactly(length)
    except asyncio.IncompleteReadError as error:
        raise ProtocolError(
            "connection dropped mid-frame (%d of %d payload bytes)"
            % (len(error.partial), length)) from error
    if zlib.crc32(payload) != crc:
        raise ProtocolError(
            "frame CRC mismatch: the stream is torn or corrupted")
    return payload


def read_frame(stream, max_payload: int = MAX_PAYLOAD) -> Optional[bytes]:
    """Blocking :func:`read_frame_async` over a file-like byte stream."""
    header = stream.read(FRAME_HEADER.size)
    if not header:
        return None
    if len(header) != FRAME_HEADER.size:
        raise ProtocolError(
            "connection dropped mid-frame (%d of %d header bytes)"
            % (len(header), FRAME_HEADER.size))
    length, crc = _checked_length(header, max_payload)
    payload = b""
    while len(payload) < length:
        chunk = stream.read(length - len(payload))
        if not chunk:
            raise ProtocolError(
                "connection dropped mid-frame (%d of %d payload bytes)"
                % (len(payload), length))
        payload += chunk
    if zlib.crc32(payload) != crc:
        raise ProtocolError(
            "frame CRC mismatch: the stream is torn or corrupted")
    return payload


# --------------------------------------------------------------------------- #
# Messages
# --------------------------------------------------------------------------- #

def encode_message(header: Mapping[str, object],
                   body_tag: int = BODY_NONE,
                   body: bytes = b"") -> bytes:
    """A frame payload: prologue + JSON header + binary body."""
    head = json.dumps(header, sort_keys=True,
                      separators=(",", ":")).encode("utf-8")
    return MESSAGE_HEADER.pack(body_tag, len(head)) + head + body


def decode_message(payload: bytes) -> Tuple[Dict[str, object], int, bytes]:
    """Split a frame payload into ``(header, body_tag, body)``."""
    if len(payload) < MESSAGE_HEADER.size:
        raise ProtocolError(
            "message of %d byte(s) is shorter than its %d-byte prologue"
            % (len(payload), MESSAGE_HEADER.size))
    body_tag, head_length = MESSAGE_HEADER.unpack_from(payload)
    if body_tag not in (BODY_NONE, BODY_RECORDS, BODY_BITMAP, BODY_PICKLE):
        raise ProtocolError("unknown body codec tag %d" % body_tag)
    start = MESSAGE_HEADER.size
    if start + head_length > len(payload):
        raise ProtocolError(
            "message header announces %d byte(s) but only %d remain"
            % (head_length, len(payload) - start))
    try:
        header = json.loads(payload[start:start + head_length])
    except ValueError as error:
        raise ProtocolError(
            "message header is not valid JSON: %s" % error) from error
    if not isinstance(header, dict):
        raise ProtocolError(
            "message header must be a JSON object, got %s"
            % type(header).__name__)
    return header, body_tag, payload[start + head_length:]


class WireCodec:
    """Batch bodies: canonical record runs first, pickle as the fallback."""

    def __init__(self, payload_size: int = 64) -> None:
        self.batches = BatchCodec(payload_size)

    def encode_values(self, values: Sequence[object]) -> Tuple[int, bytes]:
        """``(body_tag, blob)`` for a value batch.

        Record runs whenever every value round-trips exactly through the
        record union (the history-independent canonical encoding); the
        pickled list otherwise — a per-batch decision, mirroring the shm
        plane's fallback contract.
        """
        values = list(values)
        blob = self.batches.try_encode(values)
        if blob is not None:
            return BODY_RECORDS, blob
        return BODY_PICKLE, pickle.dumps(values, protocol=4)

    @staticmethod
    def encode_flags(flags: Sequence[bool]) -> Tuple[int, bytes]:
        return BODY_BITMAP, BatchCodec.encode_bitmap(flags)

    def decode_body(self, body_tag: int, blob: bytes,
                    count: int) -> List[object]:
        """Decode ``count`` values (or flags) from a message body."""
        if not isinstance(count, int) or isinstance(count, bool) or count < 0:
            raise ProtocolError("body count must be a non-negative integer, "
                                "got %r" % (count,))
        if body_tag == BODY_NONE:
            if count or blob:
                raise ProtocolError("bodyless message announces %d value(s) "
                                    "and %d byte(s)" % (count, len(blob)))
            return []
        if body_tag == BODY_RECORDS:
            try:
                return self.batches.decode(blob, count)
            except (ReproError, struct.error) as error:
                raise ProtocolError(
                    "record-run body does not decode: %s" % error) from error
        if body_tag == BODY_BITMAP:
            try:
                return self.batches.decode_bitmap(blob, count)
            except ReproError as error:
                raise ProtocolError(
                    "bitmap body does not decode: %s" % error) from error
        try:
            values = pickle.loads(blob)
        except Exception as error:
            raise ProtocolError(
                "pickled body does not decode: %s" % error) from error
        if not isinstance(values, list) or len(values) != count:
            raise ProtocolError(
                "pickled body is not the announced %d-value list" % count)
        return values


# --------------------------------------------------------------------------- #
# Errors and topology over the wire
# --------------------------------------------------------------------------- #

def error_payload(error: BaseException) -> Dict[str, str]:
    """The typed-error header field: original class name + plain message.

    ``KeyError`` subclasses ``repr()`` their argument in ``str()``; going
    through ``Exception.__str__`` keeps the message byte-identical to what
    the raiser passed (the contract PR 6's unpicklable-reply fix set for
    the process backend).
    """
    if isinstance(error, KeyError):
        message = Exception.__str__(error)
    else:
        message = str(error)
    return {"type": type(error).__name__, "message": message}


def raise_for_reply(header: Mapping[str, object]) -> None:
    """Re-raise a reply's failure as a typed client-side exception."""
    status = header.get("status")
    if status == STATUS_OK:
        return
    if status == STATUS_BUSY:
        raise ServerBusyError(
            str(header.get("message") or
                "server shed the request under admission control"))
    if status == STATUS_ERROR:
        detail = header.get("error")
        if not isinstance(detail, Mapping):
            raise ProtocolError("error reply carries no error detail")
        name = str(detail.get("type", "ReproError"))
        message = str(detail.get("message", ""))
        cls = ERROR_TYPES.get(name)
        if cls is not None:
            raise cls(message)
        raise RemoteError(name, message)
    raise ProtocolError("reply has unknown status %r" % (status,))


def topology_token(shard_ids: Sequence[int]) -> int:
    """A small fingerprint of the shard-id tuple.

    Clients attach it to routed requests; a server whose topology moved on
    (elastic resize) flags the mismatch in its reply so the client
    refreshes its shard map — requests keep executing correctly either
    way, because the server routes by key itself.
    """
    return zlib.crc32(repr(tuple(shard_ids)).encode("utf-8"))


def group_for_routing(router, shard_ids: Sequence[int],
                      keyed: Sequence[Tuple[object, object]]
                      ) -> "Dict[int, List[Tuple[int, object]]]":
    """Group ``(key, item)`` work by owning shard id, positions preserved.

    The client-side half of the engine's shard-grouped dispatch: one
    request per shard instead of an interleaving, using the *same* router
    the server routes with (its spec comes over in the handshake).
    """
    shard_ids = tuple(shard_ids)
    groups: Dict[int, List[Tuple[int, object]]] = {}
    for position, (key, item) in enumerate(keyed):
        shard_id = router.route(key, shard_ids)
        groups.setdefault(shard_id, []).append((position, item))
    return groups
