"""Network front-end: serve HI dictionary engines over TCP.

The wire stays as history-independent as the structures behind it — see
:mod:`repro.net.protocol` for the frame discipline, :mod:`repro.net.server`
for the asyncio server (namespaces, admission control, graceful drain),
and :mod:`repro.net.client` for the routed sync/async clients.
"""

from repro.net.client import AsyncReproClient, ReproClient
from repro.net.protocol import PROTOCOL_VERSION, WireCodec
from repro.net.server import ReproServer, ThreadedServer, engine_digest

__all__ = [
    "AsyncReproClient",
    "PROTOCOL_VERSION",
    "ReproClient",
    "ReproServer",
    "ThreadedServer",
    "WireCodec",
    "engine_digest",
]
