"""Adapters presenting rank-addressed sparse tables as key-addressed dictionaries.

The packed-memory arrays (:class:`~repro.core.hi_pma.HistoryIndependentPMA`,
:class:`~repro.pma.classic.ClassicPMA`, :class:`~repro.pma.adaptive.AdaptivePMA`)
speak ranks, not keys.  :class:`RankKeyedDictionary` wraps one of them behind
the :class:`~repro.api.protocol.HIDictionary` protocol by keeping a shadow
sorted key list for rank translation — the same bookkeeping the CLI and the
audit replays used to repeat inline — and a side table for the values (the
PMA slots store the bare keys, so the physical layout is exactly what the
direct rank-addressed drivers produce).
"""

from __future__ import annotations

import bisect
from typing import Iterator, List, Sequence, Tuple

from repro.api.protocol import HIDictionary, Pair
from repro.errors import DuplicateKey, InvariantViolation, KeyNotFound
from repro.memory.stats import IOStats


class RankKeyedDictionary(HIDictionary):
    """Key-addressed facade over a rank-addressed structure.

    Parameters
    ----------
    structure:
        Any rank-addressed sequence exposing ``insert(rank, item)``,
        ``delete(rank)``, ``get(rank)``, ``query(first, last)``, ``check()``
        and ``__len__``.  The PMAs all qualify.
    """

    def __init__(self, structure: object) -> None:
        self._structure = structure
        #: The wrapped structure's tracker (if any), surfaced so the unified
        #: ``io_stats()`` path sees it through the adapter too.
        self.io_tracker = getattr(structure, "io_tracker", None)
        self._shadow: List[object] = []
        self._values = {}

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #

    @property
    def raw(self) -> object:
        """The wrapped rank-addressed structure."""
        return self._structure

    @property
    def stats(self) -> IOStats:
        """The wrapped structure's counters (one stats path for consumers)."""
        return self._structure.stats

    def __len__(self) -> int:
        return len(self._shadow)

    def __iter__(self) -> Iterator[object]:
        return iter(list(self._shadow))

    def items(self) -> List[Pair]:
        return [(key, self._values[key]) for key in self._shadow]

    def memory_representation(self) -> Tuple[object, ...]:
        """Delegate to the wrapped structure (the physical layout is its)."""
        return self._structure.memory_representation()

    def snapshot_slots(self) -> Sequence[object]:
        """The wrapped structure's slot array, gaps included."""
        slots = getattr(self._structure, "slots", None)
        if callable(slots):
            return slots()
        return self.items()

    # ------------------------------------------------------------------ #
    # Dictionary operations
    # ------------------------------------------------------------------ #

    def contains(self, key: object) -> bool:
        rank = bisect.bisect_left(self._shadow, key)
        found = rank < len(self._shadow) and self._shadow[rank] == key
        if self._shadow:
            # Charge the probe to the slot array — a miss still reads the
            # block where the key would live.
            self._structure.get(min(rank, len(self._shadow) - 1))
        return found

    def search(self, key: object) -> object:
        if not self.contains(key):
            raise KeyNotFound(key)
        return self._values[key]

    def insert(self, key: object, value: object = None) -> None:
        rank = bisect.bisect_left(self._shadow, key)
        if rank < len(self._shadow) and self._shadow[rank] == key:
            raise DuplicateKey(key)
        self._structure.insert(rank, key)
        self._shadow.insert(rank, key)
        self._values[key] = value

    def upsert(self, key: object, value: object = None) -> bool:
        rank = bisect.bisect_left(self._shadow, key)
        if rank < len(self._shadow) and self._shadow[rank] == key:
            # Charge the locate probe (as contains does), then overwrite in
            # place: slot positions depend only on occupancy, so rewriting
            # the slot leaves the layout distribution untouched.
            self._structure.get(rank)
            ranked_upsert = getattr(self._structure, "upsert", None)
            if callable(ranked_upsert):
                ranked_upsert(rank, key)
            else:
                self._structure.delete(rank)
                self._structure.insert(rank, key)
            self._values[key] = value
            return True
        self.insert(key, value)
        return False

    def delete(self, key: object) -> object:
        rank = bisect.bisect_left(self._shadow, key)
        if rank >= len(self._shadow) or self._shadow[rank] != key:
            raise KeyNotFound(key)
        self._structure.delete(rank)
        self._shadow.pop(rank)
        return self._values.pop(key)

    def range_query(self, low: object, high: object) -> List[Pair]:
        if high < low or not self._shadow:
            return []
        first = bisect.bisect_left(self._shadow, low)
        last = bisect.bisect_right(self._shadow, high) - 1
        if last < first:
            return []
        keys = self._structure.query(first, last)
        return [(key, self._values[key]) for key in keys]

    # ------------------------------------------------------------------ #
    # Validation
    # ------------------------------------------------------------------ #

    def check(self) -> None:
        self._structure.check()
        stored = getattr(self._structure, "to_list", None)
        if callable(stored) and list(stored()) != self._shadow:
            raise InvariantViolation(
                "rank-addressed contents diverged from the shadow key list")
        if set(self._values) != set(self._shadow):
            raise InvariantViolation("value table diverged from the key list")
