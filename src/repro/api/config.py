"""One typed, serializable description of a sharded engine deployment.

:func:`~repro.api.sharded.make_sharded_engine` grew one keyword argument
per PR — router, vnodes, weights, parallel, max_workers, plane,
replication, durability_dir, durability_mode, fsync — and every consumer
(CLI commands, the durability manifest, now the network server handshake)
re-spelled the same sprawl.  :class:`EngineConfig` is the one object they
all share:

* ``make_sharded_engine(config=cfg)`` is the primary spelling; the legacy
  keyword arguments still work and delegate here.
* :meth:`EngineConfig.to_dict` / :meth:`EngineConfig.from_dict` round-trip
  through plain JSON-safe dicts, so the durability manifest embeds the
  config it was built from and the server hands it to clients at
  handshake.
* :meth:`EngineConfig.validate` centralises the cross-field rules
  (replication/durability/plane require the process backend, secure mode
  requires a durability directory, ...) that used to live inline in
  ``make_sharded_engine``.

The config is *frozen*: derive variants with :func:`dataclasses.replace`.
"""

from __future__ import annotations

from dataclasses import dataclass, field, fields, replace
from typing import Dict, Mapping, Optional

from repro.api.routing import make_router
from repro.errors import ConfigurationError

#: Parallel dispatch backends accepted by :func:`make_sharded_engine`
#: (re-exported from :mod:`repro.api.sharded` for backward compatibility).
PARALLEL_MODES = ("none", "thread", "process")

#: Read routing policies for the replicated engine.  ``"primary"`` serves
#: every read from the shard's primary copy (replicas are failover-only);
#: ``"round-robin"`` rotates point reads across live copies and fans bulk
#: sub-batches over them; ``"any-after-barrier"`` does the same but only
#: admits a replica once it has acked the engine's latest barrier — the
#: instant history independence guarantees it is byte-identical to the
#: primary.
READ_POLICIES = ("primary", "round-robin", "any-after-barrier")


def _parallel_mode(parallel: object) -> str:
    """Normalise the ``parallel`` flag: a mode name, or PR 3's boolean API.

    Strings must name a known mode; everything else falls back to PR 3's
    ``parallel: bool`` contract — plain truthiness, where truthy meant the
    thread engine — so callers passing ``1``/``0`` keep working.
    """
    if isinstance(parallel, str):
        if parallel in PARALLEL_MODES:
            return parallel
        raise ConfigurationError(
            "parallel must be one of %s (or a boolean, where True means "
            "'thread'), got %r" % (", ".join(PARALLEL_MODES), parallel))
    return "thread" if parallel else "none"


@dataclass(frozen=True)
class EngineConfig:
    """A validated, serializable sharded-engine deployment description.

    Construction normalises the polymorphic fields so two configs that
    mean the same deployment compare equal: ``inner`` sequences become
    tuples, ``router`` becomes its canonical
    :meth:`~repro.api.routing.Router.spec` dict (whatever the caller
    passed — a name, a spec mapping, or a built router), and ``parallel``
    becomes a mode name.  ``vnodes``/``weights`` fold into the router
    spec; pass them inside the ``router`` mapping (or a built router).
    """

    inner: object = "hi-skiplist"
    shards: int = 4
    block_size: int = 64
    cache_blocks: int = 0
    seed: object = None
    backend: str = "auto"
    inner_params: Mapping[str, object] = field(default_factory=dict)
    router: object = "modulo"
    parallel: object = "none"
    max_workers: Optional[int] = None
    plane: Optional[str] = None
    replication: int = 1
    read_policy: str = "primary"
    durability_dir: Optional[str] = None
    durability_mode: str = "logged"
    fsync: bool = True
    sample_operations: bool = False
    telemetry: bool = False

    def __post_init__(self) -> None:
        inner = self.inner
        if isinstance(inner, (list, tuple)):
            inner = tuple(inner)
        object.__setattr__(self, "inner", inner)
        object.__setattr__(self, "inner_params",
                           dict(self.inner_params or {}))
        object.__setattr__(self, "router", make_router(self.router).spec())
        object.__setattr__(self, "parallel", _parallel_mode(self.parallel))

    # ------------------------------------------------------------------ #
    # Validation
    # ------------------------------------------------------------------ #

    def validate(self) -> "EngineConfig":
        """Check the cross-field deployment rules; return ``self``.

        Field-level validation (block sizes, registry names, router
        shapes) still happens where it always did — in the registry and
        the engine constructors — so a config that passes here can still
        be rejected there; this method owns only the rules that relate
        *deployment* fields to each other.
        """
        if not isinstance(self.shards, int) or isinstance(self.shards, bool) \
                or self.shards < 1:
            raise ConfigurationError(
                "shards must be an integer >= 1, got %r" % (self.shards,))
        if self.parallel == "none" and self.max_workers is not None:
            raise ConfigurationError(
                "max_workers only applies to the parallel engines; "
                "pass parallel='thread' or parallel='process'")
        if not isinstance(self.replication, int) \
                or isinstance(self.replication, bool) \
                or self.replication < 1:
            raise ConfigurationError(
                "replication must be an integer >= 1, got %r"
                % (self.replication,))
        if (self.replication > 1 or self.durability_dir is not None) \
                and self.parallel != "process":
            raise ConfigurationError(
                "replication and durability require the process backend "
                "(shards must live in workers that can crash "
                "independently); pass parallel='process'")
        if self.read_policy not in READ_POLICIES:
            raise ConfigurationError(
                "read_policy must be one of %s, got %r"
                % (", ".join(repr(policy) for policy in READ_POLICIES),
                   self.read_policy))
        if self.read_policy != "primary" and self.replication < 2:
            raise ConfigurationError(
                "read_policy=%r balances reads across replica copies; it "
                "needs replication >= 2 (which implies parallel='process')"
                % (self.read_policy,))
        if self.durability_mode not in ("logged", "secure"):
            raise ConfigurationError(
                "durability_mode must be 'logged' or 'secure', got %r"
                % (self.durability_mode,))
        if self.durability_mode != "logged" and self.durability_dir is None:
            raise ConfigurationError(
                "durability_mode='secure' redacts the on-disk op logs at "
                "barriers; it needs durability_dir=... (and "
                "parallel='process')")
        if not isinstance(self.telemetry, bool):
            raise ConfigurationError(
                "telemetry is a boolean switch (request tracing on the "
                "engine), got %r" % (self.telemetry,))
        if self.plane is not None and self.parallel != "process":
            raise ConfigurationError(
                "plane only applies to the process backend (the thread "
                "and sequential engines share the parent's memory); "
                "pass parallel='process'")
        return self

    # ------------------------------------------------------------------ #
    # Serialization
    # ------------------------------------------------------------------ #

    def to_dict(self) -> Dict[str, object]:
        """The config as a plain JSON-safe dict (see :meth:`from_dict`).

        ``seed`` must be an integer or ``None`` — a live ``random.Random``
        cannot be serialized, and a config that names one is rejected here
        rather than silently dropped.
        """
        if self.seed is not None and (not isinstance(self.seed, int)
                                      or isinstance(self.seed, bool)):
            raise ConfigurationError(
                "only integer (or None) seeds serialize; this config "
                "carries %r" % (self.seed,))
        inner = self.inner
        if isinstance(inner, tuple):
            inner = list(inner)
        return {
            "inner": inner,
            "shards": self.shards,
            "block_size": self.block_size,
            "cache_blocks": self.cache_blocks,
            "seed": self.seed,
            "backend": self.backend,
            "inner_params": dict(self.inner_params),
            "router": dict(self.router),
            "parallel": self.parallel,
            "max_workers": self.max_workers,
            "plane": self.plane,
            "replication": self.replication,
            "read_policy": self.read_policy,
            "durability_dir": self.durability_dir,
            "durability_mode": self.durability_mode,
            "fsync": self.fsync,
            "sample_operations": self.sample_operations,
            "telemetry": self.telemetry,
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, object]) -> "EngineConfig":
        """Rebuild a config from :meth:`to_dict` output (strict keys).

        Missing keys take the field defaults (forward compatibility for
        manifests written before a field existed); unknown keys are
        rejected so a typo cannot silently configure nothing.
        """
        if not isinstance(payload, Mapping):
            raise ConfigurationError(
                "EngineConfig.from_dict takes a mapping, got %r"
                % (payload,))
        known = {spec.name for spec in fields(cls)}
        unknown = set(payload) - known
        if unknown:
            raise ConfigurationError(
                "unknown EngineConfig key(s): %s"
                % ", ".join(sorted(map(str, unknown))))
        return cls(**dict(payload))

    def replace(self, **changes: object) -> "EngineConfig":
        """A copy with ``changes`` applied (:func:`dataclasses.replace`)."""
        return replace(self, **changes)
