"""Shared-memory data plane for the process-parallel engines.

PR 4 ships every bulk batch through a pickled ``multiprocessing`` pipe, and
``BENCH_wallclock.json`` shows what that costs: the process backend ran at
0.70–0.79× of the *sequential* engine, because each crossing pays pickle,
pipe write, pipe read and unpickle for the whole payload.  This module is
the zero-pickle hot path: each worker gets one
:class:`multiprocessing.shared_memory.SharedMemory` segment split into a
request ring (parent writes, worker reads) and a reply ring (worker writes,
parent reads), and bulk batches cross as compact binary frames — the pipe
then carries only a small dispatch header (shard id, opcode, frame offset).

Three pieces:

* :class:`BatchCodec` — encodes a batch of keys, ``(key, value)`` pairs or
  result values as back-to-back fixed-width records, reusing
  :class:`repro.storage.encoding.RecordCodec`'s canonical framing (the same
  tagged union the snapshots and op logs persist), plus a packed bitmap for
  ``contains_many`` replies.  Values the record union cannot represent
  *exactly* — bools (the codec widens them to ints), huge ints, nested
  containers, anything over the payload budget — make :meth:`try_encode`
  return ``None``, and the caller falls back to the pickled pipe for that
  batch: the fallback is a per-batch decision, never an error.
* :class:`ShmRing` — a bump-pointer ring over one region of the segment.
  Every frame is ``length | crc32 | payload``; the reader re-checks both
  against the dispatch header, so a torn or partial frame (a worker killed
  mid-write, a corrupted segment) surfaces as :class:`ShmFrameError`
  instead of silently decoding garbage.  The engines keep at most one
  outstanding command per worker, so the ring needs no locking — each
  command's frames bump-allocate from the region start, and a frame that
  would not fit falls back to the pipe.
* :class:`ShmChannel` — the per-worker pair of rings plus codec.  The
  parent creates the segment; the worker attaches by name (which works
  under ``fork`` and ``spawn`` alike) and detaches on shutdown, while the
  parent owns the unlink.

:class:`PlaneStats` counts frames, bytes crossed, pickle fallbacks,
coalesced crossings and group-commit fsync batches — deterministic
functions of the workload and topology, which is what lets
``benchmarks/baseline.py`` gate the data plane without timing flakiness.
"""

from __future__ import annotations

import struct
import zlib
from typing import Dict, List, Optional, Sequence, Tuple

from repro.errors import CapacityError, ConfigurationError, WorkerCrashError
from repro.storage.encoding import RecordCodec

#: Default payload budget per record — matches the op log's
#: (``repro.replication.recovery.PAYLOAD_SIZE``), so any key/value pair a
#: durable engine can log is also shm-encodable.
DEFAULT_PAYLOAD_SIZE = 64

#: Default segment size per worker (split evenly into request/reply rings).
#: A 20k-entry batch of int pairs needs ~1.4 MB of 69-byte records; batches
#: that do not fit simply fall back to the pipe, so this bounds memory, not
#: correctness.
DEFAULT_CAPACITY = 4 * 1024 * 1024

#: Per-frame header: payload length, CRC-32 of the payload.
_FRAME = struct.Struct(">II")

#: Reply-descriptor tag sent over the pipe instead of a pickled payload.
SHM_REPLY_TAG = "__shm__"


class ShmFrameError(WorkerCrashError):
    """A shared-memory frame failed its length or CRC check.

    Subclasses :class:`~repro.errors.WorkerCrashError` because a torn frame
    means the writer died mid-write (or the segment was corrupted): the
    transport to that worker can no longer be trusted, which is exactly the
    contract a worker crash has.
    """


class BatchCodec:
    """Encode batches of keys / pairs / values as fixed-width record runs."""

    def __init__(self, payload_size: int = DEFAULT_PAYLOAD_SIZE) -> None:
        self.records = RecordCodec(payload_size=payload_size)
        self.payload_size = payload_size
        self.record_size = self.records.record_size

    def try_encode(self, values: Sequence[object]) -> Optional[bytes]:
        """The batch as a record run, or ``None`` to fall back.

        ``None`` means at least one value is not *exactly* representable in
        the record union (wrong type, over budget, bool — which the codec
        canonicalises to int — or an int past 16 bytes) — the caller ships
        that batch over the pickled pipe instead.
        """
        records = self.records
        try:
            for value in values:
                if not records.round_trips_exactly(value):
                    return None
            return records.encode_run(values)
        except (CapacityError, ConfigurationError, OverflowError,
                UnicodeEncodeError):
            return None

    def decode(self, blob: bytes, count: int) -> List[object]:
        """Decode ``count`` records previously produced by :meth:`try_encode`."""
        if len(blob) != count * self.record_size:
            raise ShmFrameError(
                "shared-memory batch holds %d bytes, expected %d records "
                "of %d" % (len(blob), count, self.record_size))
        return self.records.decode_run(blob, count)

    @staticmethod
    def encode_bitmap(flags: Sequence[bool]) -> bytes:
        """Pack booleans (``contains_many`` replies) eight to a byte."""
        blob = bytearray((len(flags) + 7) // 8)
        for index, flag in enumerate(flags):
            if flag:
                blob[index // 8] |= 1 << (index % 8)
        return bytes(blob)

    @staticmethod
    def decode_bitmap(blob: bytes, count: int) -> List[bool]:
        if len(blob) != (count + 7) // 8:
            raise ShmFrameError(
                "shared-memory bitmap holds %d bytes for %d flags"
                % (len(blob), count))
        return [bool(blob[index // 8] >> (index % 8) & 1)
                for index in range(count)]


class ShmRing:
    """A frame ring over one region of a shared segment.

    Single writer, single reader, one *command* outstanding at a time (the
    engines' one-command-per-worker rule).  The writer calls :meth:`reset`
    at each command boundary and bump-allocates that command's frames from
    the region start — a coalesced command may carry several frames, and a
    strict no-wrap allocator is what guarantees a later frame can never
    overwrite an earlier frame of the same command.  A frame that does not
    fit raises :class:`~repro.errors.CapacityError` and the caller ships
    that batch over the pickled pipe instead.
    """

    def __init__(self, buffer, start: int, size: int) -> None:
        self._buffer = buffer
        self._start = start
        self._size = size
        self._cursor = 0

    @property
    def capacity(self) -> int:
        """Largest payload one frame can carry."""
        return self._size - _FRAME.size

    def reset(self) -> None:
        """Start a new command: its frames allocate from the region start.

        Safe exactly because the previous command's reply was fully read
        (and copied out) before the next command is sent.
        """
        self._cursor = 0

    def write(self, payload: bytes, tripwire=None) -> int:
        """Append one frame; returns its offset within this ring.

        ``tripwire`` (the fail-point hook) runs after the header landed but
        before the payload — the exact window where killing the writer
        leaves a torn frame for :meth:`read` to detect.
        """
        needed = _FRAME.size + len(payload)
        if self._cursor + needed > self._size:
            raise CapacityError(
                "shared-memory frame of %d bytes does not fit at offset %d "
                "of a %d-byte ring" % (len(payload), self._cursor,
                                       self._size))
        offset = self._cursor
        at = self._start + offset
        self._buffer[at:at + _FRAME.size] = _FRAME.pack(
            len(payload), zlib.crc32(payload))
        if tripwire is not None:
            tripwire()
        self._buffer[at + _FRAME.size:at + needed] = payload
        self._cursor = offset + needed
        return offset

    def read(self, offset: int, length: int) -> bytes:
        """Read and verify the frame the dispatch header described.

        The stored length must match the header's and the CRC must check
        out; anything else is a torn or partial frame and raises
        :class:`ShmFrameError`.
        """
        if offset < 0 or offset + _FRAME.size + length > self._size:
            raise ShmFrameError(
                "shared-memory frame (offset %d, %d bytes) is outside the "
                "ring's %d bytes" % (offset, length, self._size))
        at = self._start + offset
        stored_length, stored_crc = _FRAME.unpack_from(
            bytes(self._buffer[at:at + _FRAME.size]))
        if stored_length != length:
            raise ShmFrameError(
                "torn shared-memory frame at offset %d: header says %d "
                "bytes, dispatch said %d" % (offset, stored_length, length))
        payload = bytes(self._buffer[at + _FRAME.size:
                                     at + _FRAME.size + length])
        if zlib.crc32(payload) != stored_crc:
            raise ShmFrameError(
                "torn shared-memory frame at offset %d: CRC mismatch over "
                "%d bytes (the writer died mid-frame or the segment was "
                "corrupted)" % (offset, length))
        return payload


class ShmChannel:
    """One worker's shared segment: request ring + reply ring + codec."""

    def __init__(self, segment, payload_size: int,
                 owner: bool) -> None:
        self._segment = segment
        self._owner = owner
        half = segment.size // 2
        self.request = ShmRing(segment.buf, 0, half)
        self.reply = ShmRing(segment.buf, half, segment.size - half)
        self.codec = BatchCodec(payload_size=payload_size)
        self.payload_size = payload_size

    @classmethod
    def create(cls, capacity: int = DEFAULT_CAPACITY,
               payload_size: int = DEFAULT_PAYLOAD_SIZE) -> "ShmChannel":
        """Parent side: allocate a fresh segment (the parent owns unlink)."""
        from multiprocessing import shared_memory

        if not isinstance(capacity, int) or isinstance(capacity, bool) \
                or capacity < 4 * _FRAME.size:
            raise ConfigurationError(
                "shm capacity must be an integer of at least %d bytes, "
                "got %r" % (4 * _FRAME.size, capacity))
        segment = shared_memory.SharedMemory(create=True, size=capacity)
        return cls(segment, payload_size, owner=True)

    @classmethod
    def attach(cls, spec: Dict[str, object]) -> "ShmChannel":
        """Worker side: attach to the parent's segment by name."""
        from multiprocessing import shared_memory

        # Python's resource tracker registers *attachments* too (bpo-38119,
        # fixed in 3.13's track=False).  Both fork and spawn workers share
        # the parent's tracker process (the fd travels in the spawn
        # preparation data), so the worker's register is a set re-add the
        # parent's own registration already covers — unregistering here
        # would strip that registration and break the owner's unlink
        # bookkeeping instead.
        segment = shared_memory.SharedMemory(name=spec["name"], create=False)
        return cls(segment, int(spec["payload_size"]), owner=False)

    def spec(self) -> Dict[str, object]:
        """What a worker needs to :meth:`attach` (picklable, spawn-safe)."""
        return {"name": self._segment.name,
                "capacity": self._segment.size,
                "payload_size": self.payload_size}

    def close(self) -> None:
        """Detach; the owning (parent) side also unlinks the segment."""
        # Drop the ring views first: SharedMemory.close() refuses to unmap
        # while exported memoryviews are alive.
        self.request = self.reply = None
        try:
            self._segment.close()
        except (BufferError, OSError):  # pragma: no cover - torn teardown
            return
        if self._owner:
            try:
                self._segment.unlink()
            except FileNotFoundError:  # pragma: no cover - already gone
                pass


class ShmPayload:
    """A bulk batch staged for the shared-memory plane.

    Built once per shard batch by the engine (the blob is shared across a
    replicated shard's copies — each worker's ``send`` writes it into its
    own ring); ``raw_args`` keeps the original pickled-pipe arguments so a
    frame that does not fit a ring falls back without re-grouping.
    """

    __slots__ = ("kind", "blob", "count", "raw_args")

    def __init__(self, kind: str, blob: bytes, count: int,
                 raw_args: tuple) -> None:
        self.kind = kind          # "records": keys or pairs
        self.blob = blob
        self.count = count
        self.raw_args = raw_args

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "ShmPayload(kind=%r, count=%d, bytes=%d)" % (
            self.kind, self.count, len(self.blob))


class PlaneStats:
    """Deterministic data-plane counters (parent side).

    Every field is a pure function of workload, topology and codec — no
    wall clock anywhere — so ``benchmarks/baseline.py`` can gate them with
    the same ±25% tolerance as the I/O counts.
    """

    __slots__ = ("frames", "bytes", "fallbacks", "coalesced",
                 "fsync_batches")

    def __init__(self) -> None:
        self.frames = 0         # shm frames written (requests + replies)
        self.bytes = 0          # payload bytes crossed through shm
        self.fallbacks = 0      # batches shipped over the pickled pipe
        self.coalesced = 0      # pipe crossings saved by batch coalescing
        self.fsync_batches = 0  # group-commit points issued (durable bulk)

    def as_dict(self) -> Dict[str, int]:
        return {"frames": self.frames, "bytes": self.bytes,
                "fallbacks": self.fallbacks, "coalesced": self.coalesced,
                "fsync_batches": self.fsync_batches}

    def merge_into(self, metrics, prefix: str = "plane") -> None:
        """Publish the counters into a metrics registry as gauges.

        Gauges, not counter increments, because plane stats are already
        cumulative — publishing is idempotent, so a bench loop (or the
        server's periodic metrics dump) can call this every interval
        without double counting.
        """
        for name, value in self.as_dict().items():
            metrics.set_gauge("%s.%s" % (prefix, name), value)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "PlaneStats(%s)" % (self.as_dict(),)


def shm_reply_descriptor(kind: str, offset: int, length: int,
                         count: int) -> Tuple[str, str, int, int, int]:
    """The pipe-borne stand-in for a reply that crossed through shm."""
    return (SHM_REPLY_TAG, kind, offset, length, count)


def is_shm_reply(payload: object) -> bool:
    return (isinstance(payload, tuple) and len(payload) == 5
            and payload[0] == SHM_REPLY_TAG)
