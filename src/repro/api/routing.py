"""Pluggable shard routers: modulo hashing and consistent hashing.

PR 2's sharded dictionary routed with one fixed function (``hash % shards``),
which is perfect for a static deployment and catastrophic for an elastic one:
changing the shard count remaps almost every key, so a resize is a full
rebuild.  This module makes routing a *strategy*:

* :class:`ModuloRouter` — the original routing, bit-for-bit: a splitmix64 /
  CRC-32 mix of the key reduced modulo the shard count.  Cheapest possible
  lookup; a resize moves ``1 - 1/lcm(n, n+1)``-ish of the keys (nearly all).
* :class:`ConsistentHashRouter` — a hash ring with ``vnodes`` virtual nodes
  per shard.  Every shard owns the arcs that precede its virtual nodes; a key
  routes to the owner of the first virtual node at or after the key's ring
  position.  Adding a shard only claims the arcs its new virtual nodes carve
  out, so an ``n → n+1`` resize moves ``≈ keys/(n+1)`` keys and *only* onto
  the new shard; removing a shard moves only that shard's keys.
* :class:`WeightedConsistentHashRouter` — the same ring with per-shard
  capacity weights mapped to vnode counts, so a shard hosted on weaker
  hardware can own a proportionally smaller arc share instead of dragging
  every parallel bulk call down to its pace.

Both routers are pure functions of ``(key, shard ids)`` — no process-salted
``hash()``, no internal mutability observable from routing — so a sharded
dictionary over history-independent shards stays history independent, and
snapshot/restore keeps every key on the shard its image came from.

Routers route over *stable shard ids*, not bare positions: when shard 1 of
``[0, 1, 2]`` is removed, shards 2's virtual nodes (keyed by the id ``2``)
stay exactly where they were, which is what limits migration to the removed
shard's keys.  :class:`ModuloRouter` ignores the ids (it only sees the count),
which is precisely why it cannot resize cheaply.
"""

from __future__ import annotations

import bisect
import zlib
from abc import ABC, abstractmethod
from typing import Dict, List, Sequence, Tuple

from repro.errors import ConfigurationError

_MASK64 = (1 << 64) - 1

#: Default number of virtual nodes per shard for consistent hashing.  Enough
#: to keep the per-shard arc share within a few percent of 1/n for small n
#: without making ring rebuilds noticeable.
DEFAULT_VNODES = 64

#: Router names accepted by the ``sharded`` registry entry's ``router`` extra.
ROUTER_NAMES = ("modulo", "consistent", "weighted")


def _mix64(value: int) -> int:
    """splitmix64-style avalanche of a 64-bit integer."""
    value &= _MASK64
    value = (value * 0x9E3779B97F4A7C15) & _MASK64
    value ^= value >> 29
    value = (value * 0xBF58476D1CE4E5B9) & _MASK64
    value ^= value >> 32
    return value


def hash_key(key: object) -> int:
    """A fixed, process-independent 64-bit hash of a dictionary key.

    Integers go through a splitmix64-style avalanche (consecutive keys land
    far apart); everything else is hashed by CRC-32 of its ``repr``.
    Python's built-in ``hash`` is deliberately avoided: it is salted per
    process for strings, which would break cross-run routing determinism and
    with it snapshot/restore.

    Keys that compare equal must hash identically (``True == 1``,
    ``2.0 == 2``), so bools and integer-valued floats are normalised to the
    integer they equal before mixing — mirroring how the inner structures'
    ordered key comparisons already treat them as the same key.
    """
    if isinstance(key, (bool, int)) or \
            (isinstance(key, float) and key.is_integer()):
        return _mix64(int(key))
    return zlib.crc32(repr(key).encode("utf-8"))


class Router(ABC):
    """Strategy mapping a key to a position in the current shard list.

    ``shard_ids`` is the sequence of *stable* shard identifiers, one per
    shard position; :meth:`route` returns a position index into it.  Ids are
    assigned by :class:`~repro.api.sharded.ShardedDictionary` (``0..n-1`` at
    construction, fresh ids for shards added later) and survive removals, so
    ring-based routers keep their virtual nodes pinned across resizes.
    """

    #: Registry-style name (``"modulo"`` / ``"consistent"``).
    name: str = ""

    @abstractmethod
    def route(self, key: object, shard_ids: Sequence[int]) -> int:
        """The position (index into ``shard_ids``) ``key`` routes to."""

    def spec(self) -> Dict[str, object]:
        """JSON-serialisable description, consumed by :func:`make_router`.

        Snapshot manifests persist this so a restore routes exactly like the
        engine the images were written from.
        """
        return {"name": self.name}

    def __repr__(self) -> str:
        return "%s()" % type(self).__name__


class ModuloRouter(Router):
    """The PR 2 routing, unchanged: mixed key hash modulo shard count.

    Ignores the stable shard ids — it only sees how many shards there are —
    so any resize reshuffles nearly every key.  Kept as the default for
    backward compatibility (existing snapshots and tests route identically)
    and as the baseline the resharding bench compares against.
    """

    name = "modulo"

    def route(self, key: object, shard_ids: Sequence[int]) -> int:
        num_shards = len(shard_ids)
        if num_shards < 1:
            raise ConfigurationError("cannot route over an empty shard list")
        return hash_key(key) % num_shards


class ConsistentHashRouter(Router):
    """Hash-ring routing with ``vnodes`` virtual nodes per shard.

    Each shard id owns ``vnodes`` pseudo-random ring positions (a pure
    function of ``(id, replica)``, independent of how many shards exist).  A
    key routes to the shard owning the first virtual node at or after
    ``hash_key(key)`` on the 64-bit ring, wrapping at the top.

    Rings are cached per shard-id tuple, so steady-state routing is one
    binary search; a resize costs one ring rebuild (``O(n · vnodes log)``).
    """

    name = "consistent"

    def __init__(self, vnodes: int = DEFAULT_VNODES) -> None:
        if not isinstance(vnodes, int) or isinstance(vnodes, bool) \
                or vnodes < 1:
            raise ConfigurationError(
                "vnodes must be an integer >= 1, got %r" % (vnodes,))
        self.vnodes = vnodes
        self._rings: Dict[Tuple[int, ...],
                          Tuple[List[int], List[int]]] = {}

    def _vnode_position(self, shard_id: int, replica: int) -> int:
        # Independent of the shard *count*: the ring position of a virtual
        # node never moves once its shard exists, which is the whole trick.
        return _mix64(((shard_id & 0xFFFFFFFF) << 32)
                      ^ _mix64(replica) ^ 0xE7F1DEAD5C0FFEE5)

    #: Rings kept cached per shard-id tuple; a long-lived elastic store only
    #: ever routes over its current tuple (plus the previous one during a
    #: migration), so anything beyond a few is dead weight.
    MAX_CACHED_RINGS = 8

    def _vnode_count(self, shard_id: int) -> int:
        """Virtual nodes ``shard_id`` places on the ring (subclass hook)."""
        return self.vnodes

    def _ring(self, shard_ids: Tuple[int, ...]) -> Tuple[List[int], List[int]]:
        cached = self._rings.get(shard_ids)
        if cached is not None:
            return cached
        if len(set(shard_ids)) != len(shard_ids):
            raise ConfigurationError(
                "shard ids must be unique, got %r" % (shard_ids,))
        points = []
        for position_index, shard_id in enumerate(shard_ids):
            for replica in range(self._vnode_count(shard_id)):
                # Ties broken by shard id so the ring order is deterministic
                # even in the (astronomically unlikely) position collision.
                points.append((self._vnode_position(shard_id, replica),
                               shard_id, position_index))
        points.sort()
        ring = ([position for position, _shard, _index in points],
                [index for _position, _shard, index in points])
        while len(self._rings) >= self.MAX_CACHED_RINGS:
            self._rings.pop(next(iter(self._rings)))  # oldest insertion first
        self._rings[shard_ids] = ring
        return ring

    def route(self, key: object, shard_ids: Sequence[int]) -> int:
        if len(shard_ids) < 1:
            raise ConfigurationError("cannot route over an empty shard list")
        positions, owners = self._ring(tuple(shard_ids))
        # Re-avalanche the key hash onto the full 64-bit ring: non-integer
        # keys hash to a 32-bit CRC, which would otherwise sit below
        # essentially every vnode position and collapse onto one shard.
        index = bisect.bisect_left(positions, _mix64(hash_key(key)))
        if index == len(positions):  # wrap past the top of the ring
            index = 0
        return owners[index]

    def successors(self, shard_id: int, shard_ids: Sequence[int],
                   count: int) -> List[int]:
        """The next ``count`` distinct shard ids after ``shard_id``'s first
        virtual node on the ring (``shard_id`` itself excluded).

        A pure function of the shard-id tuple — no key, no state — which is
        what the replication layer wants from a placement rule: replica
        placements survive restarts and resizes exactly like key routing
        does, and removing an unrelated shard never moves an existing
        replica chain (its vnodes simply vanish from the walk).
        """
        ids = tuple(shard_ids)
        if shard_id not in ids:
            raise ConfigurationError(
                "shard id %r is not in the ring %r" % (shard_id, ids))
        positions, owners = self._ring(ids)
        start = bisect.bisect_left(positions,
                                   self._vnode_position(shard_id, 0))
        found: List[int] = []
        for step in range(len(positions)):
            owner = ids[owners[(start + step) % len(positions)]]
            if owner != shard_id and owner not in found:
                found.append(owner)
                if len(found) >= count:
                    break
        return found

    def spec(self) -> Dict[str, object]:
        return {"name": self.name, "vnodes": self.vnodes}

    def __repr__(self) -> str:
        return "ConsistentHashRouter(vnodes=%d)" % self.vnodes


class WeightedConsistentHashRouter(ConsistentHashRouter):
    """Consistent hashing with per-shard capacity weights.

    ``weights`` maps stable shard ids to positive relative capacities; a
    shard places ``max(1, round(vnodes * weight))`` virtual nodes, so its
    expected key share scales with its weight.  Shards absent from the
    mapping weigh ``1.0`` (exactly the unweighted ring), which is what
    makes the weighted router a drop-in: an empty mapping routes
    bit-for-bit like :class:`ConsistentHashRouter`.

    The point is heterogeneous worker pools: a half-capacity host stops
    being the straggler every parallel bulk call waits on when its shard's
    arc share is halved to match.  Weights are fixed at construction (they
    describe hardware, not load) and persist through :meth:`spec`, so
    snapshot manifests restore the same skew they were written under.
    """

    name = "weighted"

    def __init__(self, weights: object = None,
                 vnodes: int = DEFAULT_VNODES) -> None:
        super().__init__(vnodes)
        self.weights = self._validated_weights(weights)

    @staticmethod
    def _validated_weights(weights: object) -> Dict[int, float]:
        if weights is None:
            return {}
        if not isinstance(weights, dict):
            raise ConfigurationError(
                "weights must be a mapping of shard id -> positive weight, "
                "got %r" % (weights,))
        validated: Dict[int, float] = {}
        for shard_id, weight in weights.items():
            # Manifest round-trip: JSON object keys come back as strings.
            if isinstance(shard_id, str) and shard_id.lstrip("-").isdigit():
                shard_id = int(shard_id)
            if not isinstance(shard_id, int) or isinstance(shard_id, bool):
                raise ConfigurationError(
                    "weight keys must be integer shard ids, got %r"
                    % (shard_id,))
            if isinstance(weight, bool) \
                    or not isinstance(weight, (int, float)) \
                    or not weight > 0:
                raise ConfigurationError(
                    "shard %d weight must be a positive number, got %r"
                    % (shard_id, weight))
            validated[shard_id] = float(weight)
        return validated

    def _vnode_count(self, shard_id: int) -> int:
        return max(1, round(self.vnodes * self.weights.get(shard_id, 1.0)))

    def spec(self) -> Dict[str, object]:
        # String keys so the spec is identical before and after a JSON
        # round-trip through a snapshot manifest.
        return {"name": self.name, "vnodes": self.vnodes,
                "weights": {str(shard_id): weight for shard_id, weight
                            in sorted(self.weights.items())}}

    def __repr__(self) -> str:
        return ("WeightedConsistentHashRouter(vnodes=%d, weights=%r)"
                % (self.vnodes, self.weights))


def make_router(router: object = "modulo", *,
                vnodes: object = None,
                weights: object = None) -> Router:
    """Build a router from a name, a spec mapping, or a :class:`Router`.

    ``router`` may be one of :data:`ROUTER_NAMES`, a mapping with a ``name``
    key (the :meth:`Router.spec` form snapshot manifests persist), or an
    already-built :class:`Router` (returned as-is; combining it with an
    explicit ``vnodes`` or ``weights`` is rejected as ambiguous).
    ``vnodes`` applies to both ring routers; ``weights`` only to
    ``"weighted"``.
    """
    if isinstance(router, Router):
        if vnodes is not None or weights is not None:
            raise ConfigurationError(
                "vnodes/weights cannot be combined with an already-built "
                "router; construct the router with them directly")
        return router
    if isinstance(router, dict):
        spec = dict(router)
        name = spec.pop("name", None)
        for option, value in (("vnodes", vnodes), ("weights", weights)):
            spec_value = spec.pop(option, None)
            if value is not None and spec_value is not None:
                raise ConfigurationError(
                    "%s given twice: %r in the router spec and %r as an "
                    "argument" % (option, spec_value, value))
            if option == "vnodes":
                vnodes = value if value is not None else spec_value
            else:
                weights = value if value is not None else spec_value
        if spec:
            raise ConfigurationError(
                "unknown router spec key(s): %s"
                % ", ".join(sorted(map(str, spec))))
        router = name
    if not isinstance(router, str) or router not in ROUTER_NAMES:
        raise ConfigurationError(
            "router must be one of %s, got %r"
            % (", ".join(ROUTER_NAMES), router))
    if router == "weighted":
        return WeightedConsistentHashRouter(
            weights=weights,
            vnodes=DEFAULT_VNODES if vnodes is None else vnodes)
    if weights is not None:
        raise ConfigurationError(
            "weights only apply to the weighted router, not %r" % (router,))
    if router == "consistent":
        return ConsistentHashRouter(
            vnodes=DEFAULT_VNODES if vnodes is None else vnodes)
    if vnodes is not None:
        raise ConfigurationError(
            "vnodes only applies to the consistent-hash router, "
            "not %r" % (router,))
    return ModuloRouter()
