"""The :class:`DictionaryEngine` facade: bulk operations, one stats path,
per-operation I/O sampling, and uniform snapshots.

The engine wraps any :class:`~repro.api.protocol.HIDictionary` (usually built
by name through :meth:`DictionaryEngine.create`) and adds the orchestration
the consumer layers kept re-implementing:

* **Bulk operations** — :meth:`insert_many`, :meth:`delete_many`,
  :meth:`build_from_trace` (replaying a workload trace).
* **One stats path** — :meth:`io_stats` merges the structure's native
  counters with its tracker (when it has one); :meth:`search_io_cost` and
  :meth:`range_io_cost` measure single operations uniformly, clearing the
  simulated cache first so costs are cold-cache comparable across
  accounting styles.
* **Per-operation sampling** — with ``sample_operations=True`` every engine
  call appends an :class:`~repro.memory.stats.OperationIOSample` to
  :attr:`samples`.
* **Uniform snapshots** — :meth:`snapshot` persists any registered
  structure's :meth:`~repro.api.protocol.HIDictionary.snapshot_slots` to a
  paged file, not just the slot-array structures ``storage/snapshot.py``
  special-cases.
"""

from __future__ import annotations

from contextlib import contextmanager
from time import perf_counter
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

from repro._rng import RandomLike
from repro.api.protocol import HIDictionary, Pair
from repro.api.registry import make_dictionary
from repro.memory.stats import IOStats, OperationIOSample
from repro.obs import MetricsRegistry, Tracer
from repro.workloads.generators import Operation, OperationKind

#: The ``io_stats()`` fields folded into telemetry snapshots (as
#: ``engine_io.*``) — the deterministic counting core of
#: :class:`~repro.memory.stats.IOStats`.
_IO_FIELDS = ("reads", "writes", "cache_hits", "element_moves",
              "operations", "total_ios")


class DictionaryEngine:
    """A thin orchestration layer over one dictionary structure."""

    def __init__(self, structure: HIDictionary, *,
                 name: Optional[str] = None,
                 sample_operations: bool = False) -> None:
        self._structure = structure
        self._name = name or getattr(structure, "registry_name",
                                     type(structure).__name__)
        self._tracker = getattr(structure, "io_tracker", None)
        self.sample_operations = sample_operations
        self.samples: List[OperationIOSample] = []
        #: The unified telemetry plane: cheap counters/histograms are
        #: always on; ``tracer`` stays the shared no-op unless telemetry
        #: is enabled (``EngineConfig.telemetry`` / ``REPRO_TRACE=1``).
        self.metrics = MetricsRegistry()
        self.tracer: Tracer = Tracer.from_env()

    @classmethod
    def create(cls, name: str, *,
               block_size: int = 64,
               cache_blocks: int = 0,
               seed: RandomLike = None,
               backend: str = "auto",
               sample_operations: bool = False,
               **extra: object) -> "DictionaryEngine":
        """Build a registered structure by name and wrap it in an engine.

        ``extra`` keyword arguments are structure-specific parameters
        forwarded to :func:`~repro.api.registry.make_dictionary` (e.g.
        ``epsilon`` for ``hi-skiplist``).
        """
        structure = make_dictionary(name, block_size=block_size,
                                    cache_blocks=cache_blocks, seed=seed,
                                    backend=backend, **extra)
        if cls is DictionaryEngine:
            # Sharded structures get their specialised engine (batched bulk
            # ops, shard-aware probes) even when built by registry name.
            from repro.api.sharded import (
                ShardedDictionary,
                ShardedDictionaryEngine,
            )
            if isinstance(structure, ShardedDictionary):
                return ShardedDictionaryEngine(
                    structure, sample_operations=sample_operations)
        return cls(structure, sample_operations=sample_operations)

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #

    @property
    def structure(self) -> HIDictionary:
        """The wrapped dictionary."""
        return self._structure

    @property
    def name(self) -> str:
        """The registry name (or class name) of the wrapped structure."""
        return self._name

    @property
    def tracker(self):
        """The attached :class:`IOTracker`, or ``None``."""
        return self._tracker

    def io_stats(self) -> IOStats:
        """The merged I/O counters of the structure and its tracker."""
        return self._structure.io_stats()

    def __len__(self) -> int:
        return len(self._structure)

    def __iter__(self) -> Iterator[object]:
        return iter(self._structure)

    def __contains__(self, key: object) -> bool:
        return self.contains(key)

    def items(self) -> List[Pair]:
        return self._structure.items()

    def check(self) -> None:
        self._structure.check()

    # ------------------------------------------------------------------ #
    # Lifecycle
    # ------------------------------------------------------------------ #

    def close(self) -> None:
        """Release engine-held resources.  Idempotent; a no-op here.

        The in-process engines hold nothing that needs releasing, but the
        process and replicated engines own worker pools and op logs — so
        ``close()`` (and ``with engine: ...``) is part of the uniform
        engine surface, letting consumers shut any engine down without
        probing for the method first.
        """

    def __enter__(self) -> "DictionaryEngine":
        return self

    def __exit__(self, exc_type, exc_value, traceback) -> None:
        self.close()

    # ------------------------------------------------------------------ #
    # Dictionary operations (sampled)
    # ------------------------------------------------------------------ #

    @contextmanager
    def _operation(self, kind: str) -> Iterator[None]:
        if not self.sample_operations:
            yield
            return
        before = self.io_stats()
        yield
        delta = self.io_stats().delta(before)
        self.samples.append(OperationIOSample(
            name=kind, reads=delta.reads, writes=delta.writes,
            element_moves=delta.element_moves))

    def insert(self, key: object, value: object = None) -> None:
        with self._operation("insert"):
            self._structure.insert(key, value)

    def upsert(self, key: object, value: object = None) -> bool:
        with self._operation("upsert"):
            return self._structure.upsert(key, value)

    def delete(self, key: object) -> object:
        with self._operation("delete"):
            return self._structure.delete(key)

    def search(self, key: object) -> object:
        with self._operation("search"):
            return self._structure.search(key)

    def contains(self, key: object) -> bool:
        with self._operation("contains"):
            return self._structure.contains(key)

    def range_query(self, low: object, high: object) -> List[Pair]:
        """Range query normalised to a plain pair list."""
        with self._operation("range"):
            return self._structure.range_items(low, high)

    # ------------------------------------------------------------------ #
    # Telemetry
    # ------------------------------------------------------------------ #

    @contextmanager
    def _bulk_op(self, kind: str) -> Iterator[None]:
        """Instrument one bulk call: a counter, a latency histogram, and
        (when tracing is on) a span.  Per *call*, not per key, so the
        disabled fast path costs two clock reads and a dict bump."""
        metrics = self.metrics
        metrics.inc("engine.calls." + kind)
        started = perf_counter()
        try:
            with self.tracer.span("engine." + kind,
                                  tags={"engine": self._name}):
                yield
        finally:
            metrics.observe_ms("engine.latency." + kind,
                               (perf_counter() - started) * 1000.0)

    def telemetry(self) -> Dict[str, object]:
        """One namespaced snapshot of every stats surface this engine has.

        Folds the registry (counters, gauges, histograms) with the
        adapters for the four legacy surfaces — ``engine_io.*`` from
        :meth:`io_stats`, ``plane.*`` from the process engine's
        ``plane_stats()``, ``erasure.*`` from the replicated engine's
        ``erasure_stats()`` and ``replica_reads.*`` from its
        ``replica_read_stats()`` — plus the tracer's deterministic
        ``telemetry.*`` counters.  Every fold counts as a registry
        merge, reported as ``telemetry.snapshot_merges``.
        """
        snap: Dict[str, object] = self.metrics.snapshot()
        stats = self.io_stats()
        for field in _IO_FIELDS:
            snap["engine_io." + field] = getattr(stats, field)
        self.metrics.merges += 1
        for prefix, hook_name in (("plane", "plane_stats"),
                                  ("erasure", "erasure_stats"),
                                  ("replica_reads", "replica_read_stats")):
            hook = getattr(self, hook_name, None)
            if not callable(hook):
                continue
            for name, value in sorted(hook().items()):
                snap["%s.%s" % (prefix, name)] = value
            self.metrics.merges += 1
        for name, value in self.tracer.snapshot().items():
            snap["telemetry." + name] = value
        snap["telemetry.snapshot_merges"] = self.metrics.merges
        return snap

    # ------------------------------------------------------------------ #
    # Bulk operations
    # ------------------------------------------------------------------ #

    def insert_many(self, entries: Iterable[object]) -> int:
        """Insert keys or (key, value) pairs; return the number inserted.

        When per-operation sampling is off (the default) the loop binds the
        structure's ``insert`` once and dispatches directly — no per-key
        context manager on the hot path.
        """
        insert = self._structure_method("insert")
        as_pair = self._as_pair
        count = 0
        with self._bulk_op("insert_many"):
            if not self.sample_operations:
                for entry in entries:
                    key, value = as_pair(entry)
                    insert(key, value)
                    count += 1
            else:
                for entry in entries:
                    key, value = as_pair(entry)
                    self.insert(key, value)
                    count += 1
        self.metrics.inc("engine.keys.insert_many", count)
        return count

    def delete_many(self, keys: Iterable[object]) -> List[object]:
        """Delete every key in order; return their values."""
        delete = self._structure_method("delete")
        with self._bulk_op("delete_many"):
            if not self.sample_operations:
                values = [delete(key) for key in keys]
            else:
                values = [self.delete(key) for key in keys]
        self.metrics.inc("engine.keys.delete_many", len(values))
        return values

    def contains_many(self, keys: Iterable[object]) -> List[bool]:
        """Membership for every key, in input order.

        The sharded engines override this with shard-grouped (and
        parallel) dispatch; here it completes the uniform bulk surface so
        workloads can be written once against any engine.
        """
        contains = self._structure_method("contains")
        with self._bulk_op("contains_many"):
            if not self.sample_operations:
                flags = [contains(key) for key in keys]
            else:
                flags = [self.contains(key) for key in keys]
        self.metrics.inc("engine.keys.contains_many", len(flags))
        return flags

    def build_from_trace(self, trace: Sequence[Operation],
                         value_of=None) -> "DictionaryEngine":
        """Replay a workload trace (inserts, deletes, searches); return self."""
        insert = self._structure_method("insert")
        delete = self._structure_method("delete")
        contains = self._structure_method("contains")
        value_of = value_of or (lambda key: key)
        if not self.sample_operations:
            for operation in trace:
                if operation.kind is OperationKind.INSERT:
                    insert(operation.key, value_of(operation.key))
                elif operation.kind is OperationKind.DELETE:
                    delete(operation.key)
                else:
                    contains(operation.key)
            return self
        for operation in trace:
            if operation.kind is OperationKind.INSERT:
                self.insert(operation.key, value_of(operation.key))
            elif operation.kind is OperationKind.DELETE:
                self.delete(operation.key)
            else:
                self.contains(operation.key)
        return self

    # ------------------------------------------------------------------ #
    # Uniform I/O measurement
    # ------------------------------------------------------------------ #

    def _structure_method(self, name: str):
        """The structure's ``name`` method, or a uniform configuration error.

        Engines can be handed duck-typed structures directly (not built
        through the registry); when such a structure is missing part of the
        dictionary protocol the failure should be a
        :class:`~repro.errors.ConfigurationError` naming the gap, not a bare
        ``AttributeError`` from deep inside a bulk loop or cost probe.
        """
        method = getattr(self._structure, name, None)
        if not callable(method):
            from repro.errors import ConfigurationError
            raise ConfigurationError(
                "engine structure %s does not implement %s(); build "
                "structures through the registry (make_dictionary) to get "
                "the full HIDictionary surface"
                % (type(self._structure).__name__, name))
        return method

    def _clear_cache(self) -> None:
        # Composite structures (the sharded router) clear all their caches
        # through one hook; plain structures go through their tracker.
        hook = getattr(self._structure, "clear_caches", None)
        if callable(hook):
            hook()
            return
        if self._tracker is not None and self._tracker.cache is not None:
            self._tracker.cache.clear()

    def _stats_objects(self) -> List[IOStats]:
        hook = getattr(self._structure, "stats_objects", None)
        if callable(hook):
            return list(hook())
        objects = []
        own = getattr(self._structure, "stats", None)
        if own is not None:
            objects.append(own)
        if self._tracker is not None:
            objects.append(self._tracker.stats)
        return objects

    @contextmanager
    def _measurement(self) -> Iterator[None]:
        """A cold-cache probe whose I/Os are rolled back afterwards.

        Used by the ``*_io_cost`` helpers so they are pure measurements:
        whatever the probe charges — natively (B-tree, B-treap), through the
        tracker (PMA family), or not at all (the skip lists' cost functions)
        — the cumulative ``io_stats()`` totals are restored, keeping them
        comparable across structures and unpolluted by measurement itself.
        """
        self._clear_cache()
        snapshots = [(stats, stats.snapshot(), list(stats.per_operation))
                     for stats in self._stats_objects()]
        try:
            yield
        finally:
            for stats, snapshot, per_operation in snapshots:
                stats.restore(snapshot)
                stats.per_operation = per_operation

    def search_io_cost(self, key: object) -> int:
        """Cold-cache I/O cost of one search, whatever the accounting style.

        A pure measurement: the probe's I/Os are rolled back from the
        cumulative counters afterwards (see :meth:`_measurement`).
        """
        with self._measurement():
            native = getattr(self._structure, "search_io_cost", None)
            if callable(native):
                return int(native(key))
            before = self.io_stats()
            self._structure.contains(key)
            return self.io_stats().delta(before).total_ios

    def range_io_cost(self, low: object, high: object) -> Tuple[List[Pair], int]:
        """Range result plus its cold-cache I/O cost.

        Like :meth:`search_io_cost`, a pure measurement: the probe's I/Os
        are rolled back from the cumulative counters afterwards.
        """
        range_query = self._structure_method("range_query")
        with self._measurement():
            before = self.io_stats()
            pairs, explicit = HIDictionary.split_range_result(
                range_query(low, high))
            measured = self.io_stats().delta(before).total_ios
            return pairs, (explicit if explicit is not None else measured)

    # ------------------------------------------------------------------ #
    # Snapshots
    # ------------------------------------------------------------------ #

    def snapshot(self, path: Optional[str] = None, *,
                 page_size: int = 4096,
                 payload_size: int = 64,
                 shuffle_pages: bool = False,
                 seed: RandomLike = None):
        """Write the structure's slot-level representation to a paged file.

        Works for every registered structure: those with a physical slot
        array persist it gaps and all; the rest persist their canonical
        (key, value) sequence.  Returns ``(paged_file, metadata)`` exactly
        like :func:`repro.storage.snapshot.snapshot_records`.
        """
        from repro.storage.snapshot import snapshot_records
        slots = list(self._structure.snapshot_slots())
        return snapshot_records(slots, page_size=page_size,
                                payload_size=payload_size, path=path,
                                shuffle_pages=shuffle_pages, seed=seed,
                                kind=self._name)

    # ------------------------------------------------------------------ #
    # Internals
    # ------------------------------------------------------------------ #

    @staticmethod
    def _as_pair(entry: object) -> Pair:
        if isinstance(entry, tuple) and len(entry) == 2:
            return entry
        return entry, None
