"""The unified dictionary API: protocol, structure registry, and engine facade.

This package is the single entry point consumer layers use to work with the
library's dictionaries:

* :class:`~repro.api.protocol.HIDictionary` — the abstract surface every
  key-addressed structure implements.
* :func:`~repro.api.registry.make_dictionary` /
  :func:`~repro.api.registry.register` — build (or add) structures by name
  with uniform configuration validation.
* :class:`~repro.api.engine.DictionaryEngine` — bulk operations, one merged
  stats path, per-operation I/O sampling, and uniform snapshots.

Quickstart::

    from repro.api import DictionaryEngine

    engine = DictionaryEngine.create("hi-skiplist", block_size=32, seed=7)
    engine.insert_many((key, key * key) for key in range(100))
    engine.range_query(10, 20)
    paged_file, metadata = engine.snapshot("index.img")
"""

from repro.api.adapters import RankKeyedDictionary
from repro.api.config import EngineConfig
from repro.api.engine import DictionaryEngine
from repro.api.protocol import HIDictionary, audit_fingerprint_of
from repro.api.registry import (
    DictionaryConfig,
    StructureInfo,
    get_info,
    make_dictionary,
    make_raw_structure,
    register,
    registry_names,
    resolve,
)
from repro.api.routing import (
    ConsistentHashRouter,
    ModuloRouter,
    Router,
    WeightedConsistentHashRouter,
    hash_key,
    make_router,
)
from repro.api.process_engine import ProcessShardedDictionaryEngine
from repro.api.sharded import (
    PARALLEL_MODES,
    MigrationReport,
    ParallelShardedDictionaryEngine,
    ShardedDictionary,
    ShardedDictionaryEngine,
    make_sharded_engine,
    shard_index,
)

def __getattr__(name: str):
    """Lazily re-export the replication engine (PEP 562).

    ``repro.replication`` imports from this package, so an eager import
    here would make the package import order-fragile; resolving the name
    on first access keeps ``from repro.api import
    ReplicatedShardedDictionaryEngine`` working without the cycle risk.
    """
    if name == "ReplicatedShardedDictionaryEngine":
        from repro.replication.engine import (
            ReplicatedShardedDictionaryEngine,
        )
        return ReplicatedShardedDictionaryEngine
    raise AttributeError("module %r has no attribute %r"
                         % (__name__, name))


__all__ = [
    "HIDictionary",
    "RankKeyedDictionary",
    "DictionaryEngine",
    "DictionaryConfig",
    "EngineConfig",
    "ConsistentHashRouter",
    "MigrationReport",
    "ModuloRouter",
    "PARALLEL_MODES",
    "ParallelShardedDictionaryEngine",
    "ProcessShardedDictionaryEngine",
    "ReplicatedShardedDictionaryEngine",
    "Router",
    "ShardedDictionary",
    "ShardedDictionaryEngine",
    "StructureInfo",
    "WeightedConsistentHashRouter",
    "audit_fingerprint_of",
    "get_info",
    "hash_key",
    "make_dictionary",
    "make_raw_structure",
    "make_router",
    "make_sharded_engine",
    "register",
    "registry_names",
    "resolve",
    "shard_index",
]
