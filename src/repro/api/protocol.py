"""The formal dictionary abstraction every structure in the library speaks.

Historically each consumer layer (CLI, audits, benchmarks, examples) imported
concrete classes and dealt with their construction and accounting quirks
directly.  :class:`HIDictionary` names the surface they all share:

* **Dictionary operations** — ``insert``, ``upsert``, ``delete``, ``search``,
  ``contains``, ``items``, ``range_query``.
* **Container protocol** — ``__len__``, ``__iter__`` (keys in increasing
  order), ``__contains__``.
* **Verification** — ``check()`` raises
  :class:`~repro.errors.InvariantViolation` when a structural invariant does
  not hold.
* **Accounting** — :meth:`io_stats` returns one merged
  :class:`~repro.memory.stats.IOStats` view no matter whether the structure
  counts I/Os itself (skip lists, B-tree) or through a shared
  :class:`~repro.memory.tracker.IOTracker` (the PMA family).
* **Serialisation** — :meth:`snapshot_slots` yields the slot-level sequence
  a disk snapshot should persist (gaps included when the structure has a
  physical slot array).
* **Auditing** — :meth:`audit_fingerprint` is the observable the
  weak-history-independence audit compares across equivalent histories.

The concrete dictionaries subclass this ABC directly; the rank-addressed
sparse tables (the PMAs) participate through
:class:`repro.api.adapters.RankKeyedDictionary`.  Construction by name goes
through :mod:`repro.api.registry`, and bulk operations / uniform snapshots
through :class:`repro.api.engine.DictionaryEngine`.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Iterator, List, Optional, Sequence, Tuple

from repro.memory.stats import IOStats

#: A (key, value) pair as returned by ``items`` and ``range_query``.
Pair = Tuple[object, object]


class HIDictionary(ABC):
    """Abstract base class for every key-addressed dictionary in the library."""

    # ------------------------------------------------------------------ #
    # Abstract dictionary surface
    # ------------------------------------------------------------------ #

    @abstractmethod
    def insert(self, key: object, value: object = None):
        """Insert a new key; raise :class:`~repro.errors.DuplicateKey` if present."""

    @abstractmethod
    def delete(self, key: object) -> object:
        """Remove ``key`` and return its value; raise
        :class:`~repro.errors.KeyNotFound` otherwise."""

    @abstractmethod
    def search(self, key: object) -> object:
        """Value stored under ``key``; raise
        :class:`~repro.errors.KeyNotFound` otherwise."""

    @abstractmethod
    def contains(self, key: object) -> bool:
        """Whether ``key`` is stored (charges the search I/Os)."""

    @abstractmethod
    def items(self) -> List[Pair]:
        """All (key, value) pairs in key order."""

    @abstractmethod
    def range_query(self, low: object, high: object):
        """All pairs with ``low <= key <= high``.

        Implementations either return the pair list directly or a
        ``(pairs, io_cost)`` tuple when they account I/Os inline (the
        external skip lists do).  Callers that need one shape use
        :meth:`range_items` or :meth:`split_range_result`.
        """

    @abstractmethod
    def check(self) -> None:
        """Verify structural invariants; raise
        :class:`~repro.errors.InvariantViolation` on failure."""

    @abstractmethod
    def __len__(self) -> int:
        """Number of stored keys."""

    @abstractmethod
    def __iter__(self) -> Iterator[object]:
        """Iterate over the keys in increasing order."""

    # ------------------------------------------------------------------ #
    # Default implementations
    # ------------------------------------------------------------------ #

    def __contains__(self, key: object) -> bool:
        return self.contains(key)

    def upsert(self, key: object, value: object = None) -> bool:
        """Insert or overwrite ``key``; return ``True`` if it already existed.

        The default deletes and re-inserts, which preserves the layout
        distribution of every history-independent structure; subclasses
        override it when they can update in place more cheaply.
        """
        existed = self.contains(key)
        if existed:
            self.delete(key)
        self.insert(key, value)
        return existed

    def io_stats(self) -> IOStats:
        """One merged view of every I/O counter this structure feeds.

        Combines the structure's own ``stats`` with the stats of an attached
        :class:`~repro.memory.tracker.IOTracker` (the ``io_tracker``
        attribute, set by the registry for tracker-backed structures), so
        consumers never have to know which accounting path a structure uses.
        """
        own = getattr(self, "stats", None)
        merged = own.snapshot() if own is not None else IOStats()
        tracker = getattr(self, "io_tracker", None)
        if tracker is not None:
            merged.merge_transfers(tracker.stats)
        return merged

    def snapshot_slots(self) -> Sequence[object]:
        """The slot-level sequence a disk snapshot of this structure persists.

        Structures with a physical slot array (the PMA family, the external
        skip list's leaf nodes) override this to include their gaps, which is
        what makes the snapshot layout itself history independent.  The
        default is the densely packed (key, value) pairs in key order.
        """
        return self.items()

    def audit_fingerprint(self) -> object:
        """The observable compared by the weak-history-independence audit.

        Defaults to a fingerprint of ``memory_representation()`` when the
        structure exposes one, and to the item sequence otherwise.
        """
        representation = getattr(self, "memory_representation", None)
        if representation is not None:
            from repro.history.representation import representation_fingerprint
            return representation_fingerprint(representation())
        return tuple(self.items())

    def range_items(self, low: object, high: object) -> List[Pair]:
        """``range_query`` normalised to a plain pair list."""
        pairs, _ios = self.split_range_result(self.range_query(low, high))
        return pairs

    @staticmethod
    def split_range_result(result: object) -> Tuple[List[Pair], Optional[int]]:
        """Split a ``range_query`` result into ``(pairs, explicit_io_cost)``.

        ``explicit_io_cost`` is ``None`` for structures that charge their
        range I/Os to ``stats`` only and return just the pair list.
        """
        if (isinstance(result, tuple) and len(result) == 2
                and isinstance(result[1], int)
                and not isinstance(result[1], bool)):
            return list(result[0]), result[1]
        return list(result), None


def audit_fingerprint_of(structure: object) -> object:
    """Audit fingerprint for *any* structure, dictionary or rank-addressed.

    Dispatches to the structure's own :meth:`HIDictionary.audit_fingerprint`
    when it has one and falls back to fingerprinting
    ``memory_representation()`` (the raw PMAs take this path).
    """
    method = getattr(structure, "audit_fingerprint", None)
    if callable(method):
        return method()
    from repro.history.representation import representation_fingerprint
    return representation_fingerprint(structure.memory_representation())
