"""Central registry of the library's dictionary structures.

Every consumer layer (CLI, audits, benchmark series, examples) resolves
structures by *name* here instead of importing concrete classes:

>>> from repro.api import make_dictionary
>>> index = make_dictionary("hi-skiplist", block_size=32, seed=7)
>>> index.insert(41, "answer-adjacent")

Each entry records, besides the factory, the metadata the consumers used to
hard-code per structure: whether the structure is history independent,
whether the underlying implementation is rank-addressed (so the audit can
drive it through the rank replay), and whether it counts I/Os through a
shared :class:`~repro.memory.tracker.IOTracker`.

Third-party backends register through :func:`register`; the built-in
structures self-register lazily on first lookup, which keeps this module
import-light and cycle-free.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Mapping, Optional, Tuple

from repro._rng import RandomLike
from repro.api.protocol import HIDictionary
from repro.errors import ConfigurationError

#: Accounting backends accepted by :func:`make_dictionary`.
BACKENDS = ("auto", "tracker", "native")


@dataclass(frozen=True)
class DictionaryConfig:
    """Validated construction parameters handed to structure factories.

    ``extra`` carries structure-specific parameters (e.g. the HI skip list's
    ``epsilon``); :func:`make_dictionary` only accepts keys the structure
    declared in its :attr:`StructureInfo.extra_params`.
    """

    block_size: int = 64
    cache_blocks: int = 0
    seed: RandomLike = None
    backend: str = "auto"
    tracker: Optional[object] = None
    extra: Mapping[str, object] = field(default_factory=dict)


@dataclass(frozen=True)
class StructureInfo:
    """One registry entry: a factory plus the metadata consumers dispatch on."""

    name: str
    factory: Callable[[DictionaryConfig], HIDictionary]
    summary: str = ""
    history_independent: bool = False
    rank_addressed: bool = False
    supports_tracker: bool = False
    aliases: Tuple[str, ...] = ()
    extra_params: Tuple[str, ...] = ()
    raw_factory: Optional[Callable[[DictionaryConfig], object]] = field(
        default=None, compare=False)


_REGISTRY: Dict[str, StructureInfo] = {}
_ALIASES: Dict[str, str] = {}
_builtin_loaded = False


def register(name: str,
             factory: Callable[[DictionaryConfig], HIDictionary],
             *,
             summary: str = "",
             history_independent: bool = False,
             rank_addressed: bool = False,
             supports_tracker: bool = False,
             aliases: Tuple[str, ...] = (),
             extra_params: Tuple[str, ...] = (),
             raw_factory: Optional[Callable[[DictionaryConfig], object]] = None
             ) -> StructureInfo:
    """Register a dictionary factory under ``name`` (plus optional aliases).

    ``factory`` receives a validated :class:`DictionaryConfig` and must return
    an :class:`~repro.api.protocol.HIDictionary`.  ``raw_factory`` (optional)
    returns the underlying structure for consumers that need the native
    surface — e.g. the rank-addressed PMA behind the ``hi-pma`` adapter.
    """
    if not name or not isinstance(name, str):
        raise ConfigurationError("structure name must be a non-empty string, "
                                 "got %r" % (name,))
    _ensure_builtin()  # so early registrations collide with builtin names now
    taken = set(_REGISTRY) | set(_ALIASES)
    for candidate in (name,) + tuple(aliases):
        if candidate in taken:
            raise ConfigurationError(
                "structure name %r is already registered" % (candidate,))
    info = StructureInfo(name=name, factory=factory, summary=summary,
                         history_independent=history_independent,
                         rank_addressed=rank_addressed,
                         supports_tracker=supports_tracker,
                         aliases=tuple(aliases),
                         extra_params=tuple(extra_params),
                         raw_factory=raw_factory)
    _REGISTRY[name] = info
    for alias in info.aliases:
        _ALIASES[alias] = name
    return info


def resolve(name: str) -> str:
    """Canonical registry name for ``name`` (which may be an alias)."""
    _ensure_builtin()
    if name in _REGISTRY:
        return name
    if name in _ALIASES:
        return _ALIASES[name]
    raise ConfigurationError(
        "unknown structure %r; known structures: %s"
        % (name, ", ".join(sorted(_REGISTRY))))


def get_info(name: str) -> StructureInfo:
    """The :class:`StructureInfo` registered under ``name`` (or an alias)."""
    return _REGISTRY[resolve(name)]


def registry_names(include_aliases: bool = False) -> List[str]:
    """Sorted canonical names (optionally with aliases) of every structure."""
    _ensure_builtin()
    names = set(_REGISTRY)
    if include_aliases:
        names |= set(_ALIASES)
    return sorted(names)


def _check_extra_params(info: StructureInfo,
                        extra: Mapping[str, object]) -> None:
    """Reject extra parameters the structure's entry does not declare."""
    unknown = set(extra) - set(info.extra_params)
    if unknown:
        raise ConfigurationError(
            "structure %r does not accept parameter(s) %s%s"
            % (info.name, ", ".join(sorted(unknown)),
               "; accepted: " + ", ".join(info.extra_params)
               if info.extra_params else ""))


def _validated_config(info: StructureInfo, block_size: int, cache_blocks: int,
                      seed: RandomLike, backend: str,
                      extra: Mapping[str, object]) -> DictionaryConfig:
    if not isinstance(block_size, int) or isinstance(block_size, bool) \
            or block_size < 2:
        raise ConfigurationError(
            "block_size must be an integer >= 2, got %r" % (block_size,))
    if not isinstance(cache_blocks, int) or isinstance(cache_blocks, bool) \
            or cache_blocks < 0:
        raise ConfigurationError(
            "cache_blocks must be a non-negative integer, got %r"
            % (cache_blocks,))
    if backend not in BACKENDS:
        raise ConfigurationError(
            "backend must be one of %s, got %r" % (", ".join(BACKENDS), backend))
    _check_extra_params(info, extra)
    return DictionaryConfig(block_size=block_size, cache_blocks=cache_blocks,
                            seed=seed, backend=backend, extra=dict(extra))


def _with_tracker(config: DictionaryConfig,
                  info: StructureInfo) -> DictionaryConfig:
    """Attach an IOTracker to the config when the backend calls for one."""
    if config.backend == "tracker" and not info.supports_tracker:
        raise ConfigurationError(
            "structure %r does not support the tracker backend" % (info.name,))
    if info.supports_tracker and config.backend in ("auto", "tracker"):
        from repro.memory.tracker import IOTracker
        tracker = IOTracker(block_size=config.block_size,
                            cache_blocks=config.cache_blocks)
        return DictionaryConfig(block_size=config.block_size,
                                cache_blocks=config.cache_blocks,
                                seed=config.seed, backend=config.backend,
                                tracker=tracker, extra=config.extra)
    return config


def make_dictionary(name: str, *,
                    block_size: int = 64,
                    cache_blocks: int = 0,
                    seed: RandomLike = None,
                    backend: str = "auto",
                    **extra: object) -> HIDictionary:
    """Build the structure registered under ``name`` with uniform validation.

    Parameters
    ----------
    name:
        A canonical registry name or alias; see :func:`registry_names`.
    block_size:
        The DAM block size ``B`` (ignored by purely in-memory structures).
    cache_blocks:
        Simulated cache size ``M/B`` for tracker-backed structures.
    seed:
        Seed (or ``random.Random``) for the structure's internal randomness.
    backend:
        I/O accounting backend: ``"auto"`` (tracker where supported),
        ``"tracker"`` (require tracker accounting) or ``"native"`` (the
        structure's own counters only).
    extra:
        Structure-specific parameters declared by the registry entry, e.g.
        ``epsilon`` for ``hi-skiplist``; unknown keys raise
        :class:`~repro.errors.ConfigurationError`.

    The returned structure carries two extra attributes: ``registry_name``
    (the canonical name it was built from) and, when tracker-backed,
    ``io_tracker`` (the attached tracker, merged into ``io_stats()``).
    """
    info = get_info(name)
    config = _with_tracker(
        _validated_config(info, block_size, cache_blocks, seed, backend, extra),
        info)
    structure = info.factory(config)
    structure.registry_name = info.name
    if config.tracker is not None:
        structure.io_tracker = config.tracker
    return structure


def make_raw_structure(name: str, *,
                       block_size: int = 64,
                       cache_blocks: int = 0,
                       seed: RandomLike = None,
                       tracker: Optional[object] = None,
                       **extra: object) -> object:
    """Build the *underlying* structure registered under ``name``.

    For the PMA entries this is the bare rank-addressed structure (what the
    ``figure2``/``attack`` pipelines and the ranked audit replay drive); for
    everything else it is the same object :func:`make_dictionary` returns,
    minus the tracker wiring.  ``extra`` carries the structure-specific
    parameters the entry declares (e.g. ``shards``/``inner`` for the sharded
    router), validated like :func:`make_dictionary` validates them.
    """
    info = get_info(name)
    _check_extra_params(info, extra)
    config = DictionaryConfig(block_size=block_size, cache_blocks=cache_blocks,
                              seed=seed, tracker=tracker, extra=dict(extra))
    if info.raw_factory is not None:
        return info.raw_factory(config)
    return info.factory(config)


def reset_registry(keep_builtin: bool = True) -> None:
    """Forget every registration (test hook).

    With ``keep_builtin`` the built-in structures re-register on next lookup;
    without it the registry stays empty until :func:`register` is called.
    """
    global _builtin_loaded
    _REGISTRY.clear()
    _ALIASES.clear()
    _builtin_loaded = not keep_builtin


# --------------------------------------------------------------------------- #
# Built-in structures
# --------------------------------------------------------------------------- #

def _ensure_builtin() -> None:
    """Register the library's own structures on first lookup."""
    global _builtin_loaded
    if _builtin_loaded:
        return
    _builtin_loaded = True

    from repro.api.adapters import RankKeyedDictionary
    from repro.btreap.btreap import BTreap
    from repro.btree.btree import BTree
    from repro.cobtree.hi_cob_tree import HistoryIndependentCOBTree
    from repro.core.hi_pma import HistoryIndependentPMA
    from repro.pma.adaptive import AdaptivePMA
    from repro.pma.classic import ClassicPMA
    from repro.skiplist.external import HistoryIndependentSkipList
    from repro.skiplist.folklore import FolkloreBSkipList
    from repro.skiplist.memory import MemorySkipList
    from repro.treap.treap import Treap

    def _hi_pma(config: DictionaryConfig) -> HistoryIndependentPMA:
        return HistoryIndependentPMA(seed=config.seed, tracker=config.tracker)

    def _classic_pma(config: DictionaryConfig) -> ClassicPMA:
        return ClassicPMA(tracker=config.tracker)

    def _adaptive_pma(config: DictionaryConfig) -> AdaptivePMA:
        return AdaptivePMA(tracker=config.tracker)

    register(
        "hi-pma",
        lambda config: RankKeyedDictionary(_hi_pma(config)),
        raw_factory=_hi_pma,
        summary="weakly HI packed-memory array (Theorem 1), key-adapted",
        history_independent=True, rank_addressed=True, supports_tracker=True)
    register(
        "classic-pma",
        lambda config: RankKeyedDictionary(_classic_pma(config)),
        raw_factory=_classic_pma,
        summary="density-threshold PMA baseline (history dependent)",
        rank_addressed=True, supports_tracker=True)
    register(
        "adaptive-pma",
        lambda config: RankKeyedDictionary(_adaptive_pma(config)),
        raw_factory=_adaptive_pma,
        summary="classic PMA with adaptive rebalance markers",
        rank_addressed=True, supports_tracker=True)
    register(
        "hi-cobtree",
        lambda config: HistoryIndependentCOBTree(seed=config.seed,
                                                 tracker=config.tracker),
        aliases=("cobtree",),
        summary="HI cache-oblivious B-tree on the augmented PMA (Theorem 2)",
        history_independent=True, supports_tracker=True)
    register(
        "hi-skiplist",
        lambda config: HistoryIndependentSkipList(block_size=config.block_size,
                                                  seed=config.seed,
                                                  **config.extra),
        aliases=("skiplist",),
        extra_params=("epsilon", "max_level"),
        summary="HI external-memory skip list (Theorem 3)",
        history_independent=True)
    register(
        "b-skiplist",
        lambda config: FolkloreBSkipList(block_size=config.block_size,
                                         seed=config.seed, **config.extra),
        extra_params=("max_level",),
        summary="folklore B-skip list (promotion 1/B; Lemma 15 baseline)",
        history_independent=True)
    register(
        "b-treap",
        lambda config: BTreap(block_size=config.block_size, seed=config.seed),
        aliases=("btreap",),
        summary="strongly HI blocked treap (Golovin-style)",
        history_independent=True)
    register(
        "b-tree",
        lambda config: BTree(block_size=config.block_size),
        aliases=("btree",),
        summary="classic B-tree baseline (history dependent)")
    register(
        "treap",
        lambda config: Treap(seed=config.seed),
        summary="in-memory treap with salted-hash priorities (strongly HI)",
        history_independent=True)
    register(
        "memory-skiplist",
        lambda config: MemorySkipList(seed=config.seed, **config.extra),
        extra_params=("promote_probability", "max_level"),
        summary="Pugh's in-memory skip list run on disk (baseline)",
        history_independent=True)

    from repro.api.sharded import ShardedDictionary

    # History independent whenever the inner structures are: routing is a
    # fixed function of the key, so equivalent histories split into
    # equivalent per-shard histories (the default inner is HI).
    register(
        "sharded",
        ShardedDictionary.from_config,
        extra_params=("shards", "inner", "inner_params", "router", "vnodes",
                      "weights"),
        summary="hash-partitioned router over N independent registry "
                "backends (modulo, consistent-hash, or weighted routing)",
        history_independent=True)
