"""Process-parallel sharded engine: long-lived workers own the shards.

PR 3's :class:`~repro.api.sharded.ParallelShardedDictionaryEngine` fans shard
batches out over a thread pool, but pure-Python shard work is GIL-bound: the
threads serialize and the "parallel" engine buys nothing on CPU-bound inners.
This module is the escape hatch: :class:`ProcessShardedDictionaryEngine`
hosts every shard's structure inside a long-lived **worker process** and
drives it over a pickled command protocol, so per-shard batches execute on
separate cores.

Design
------

* **Workers own the state.**  At construction the engine pickles each local
  shard to its worker (one worker per shard by default, fewer when
  ``max_workers`` caps the pool — workers then host several shards).  The
  parent's shard slots are replaced by :class:`_ShardProxy` stand-ins that
  forward every dictionary call to the owning worker, so *all* of the
  inherited :class:`~repro.api.sharded.ShardedDictionary` machinery —
  routing, merged iteration, elastic ``add_shard``/``remove_shard``
  migration, per-shard snapshots, ``check()`` — keeps working unchanged.
* **One round-trip per shard per bulk call.**  ``insert_many`` /
  ``delete_many`` / ``contains_many`` ship each shard's whole batch as a
  single command (amortizing IPC exactly the way PR 2's batched routing
  amortized dispatch), with at most one outstanding command per worker so
  a large payload can never deadlock against a worker blocked on its reply.
* **Bulk payloads cross through shared memory.**  On the default ``shm``
  data plane (see :mod:`repro.api.shm_plane`) each worker owns a shared
  segment: batches are encoded as fixed-width binary records into the
  worker's request ring and the pipe carries only a small dispatch header
  (shard id, opcode, frame offset); replies — deleted values,
  ``contains`` bitmaps — come back through the reply ring the same way.
  Batches the record codec cannot represent exactly fall back to the
  pickled pipe per batch, automatically.  ``plane="pipe"`` (or
  ``REPRO_DATA_PLANE=pipe``) disables the shared-memory path entirely.
* **Crossings coalesce per worker.**  When one bulk call queues several
  commands for the same worker (``max_workers`` packing, replica copies),
  they merge into a single ``__multi__`` crossing; a durable worker then
  group-commits its op logs once per crossing instead of once per shard
  copy.
* **Probes roll back worker-side.**  ``search_io_cost`` / ``range_io_cost``
  run the cold-cache measurement inside the worker's own
  :class:`~repro.api.engine.DictionaryEngine`, so cumulative ``io_stats()``
  stay byte-identical to the sequential engine's.
* **Crashes are contained.**  A worker that dies mid-conversation raises
  :class:`~repro.errors.WorkerCrashError` naming the shard; commands to
  surviving workers keep working, and :meth:`restart_workers` respawns dead
  workers with freshly built (empty) shards, reporting which shard
  positions lost their data.  :meth:`close` (or the context-manager exit)
  shuts every worker down cleanly.

The byte-identity guarantee matches the thread engine's: bulk calls that
*succeed* return results, layouts and counters identical to the sequential
engine; when a batch raises, the same exception surfaces, but other shards'
already-dispatched batches run to completion.

Build one through the usual convenience constructor::

    from repro.api import make_sharded_engine

    with make_sharded_engine("hi-skiplist", shards=4,
                             parallel="process") as engine:
        engine.insert_many((key, key) for key in range(100_000))
        engine.contains_many(range(0, 100_000, 7))
"""

from __future__ import annotations

import hashlib
import heapq
import multiprocessing
import os
import traceback
from collections import deque
from multiprocessing.connection import wait
from typing import (
    Deque,
    Dict,
    Iterable,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
)

from repro.api.engine import DictionaryEngine
from repro.api.protocol import HIDictionary, Pair
from repro.api.sharded import (
    MigrationReport,
    ShardedDictionary,
    ShardedDictionaryEngine,
)
from repro.api.shm_plane import (
    DEFAULT_CAPACITY,
    DEFAULT_PAYLOAD_SIZE,
    BatchCodec,
    PlaneStats,
    ShmChannel,
    ShmFrameError,
    ShmPayload,
    is_shm_reply,
    shm_reply_descriptor,
)
from repro.errors import CapacityError, ConfigurationError, WorkerCrashError
from repro.obs import Tracer, child_span

#: One parent->worker command: ``(shard_id, method, args)`` — plus an
#: optional fourth element, a trace header dict, when the parent engine
#: has request tracing enabled (see :mod:`repro.obs.tracing`).  Replies
#: are ``(status, payload)`` 2-tuples, growing an optional third element
#: (the worker's finished span dicts) on traced commands.
Command = Tuple[int, str, tuple]

#: Data planes the process engines speak: shared-memory rings (default)
#: or the original pickled pipe.
PLANE_MODES = ("shm", "pipe")

#: Bulk methods that mutate a shard (and therefore commit its op log).
_BULK_MUTATORS = frozenset(("insert_batch", "delete_batch"))


def _resolve_plane(plane: Optional[str]) -> str:
    """Validate the data-plane choice; ``REPRO_DATA_PLANE`` sets the default."""
    if plane is None:
        plane = os.environ.get("REPRO_DATA_PLANE") or "shm"
    if plane not in PLANE_MODES:
        raise ConfigurationError(
            "plane must be one of %s, got %r"
            % (", ".join(PLANE_MODES), plane))
    return plane


def _default_start_method() -> str:
    """``fork`` where the platform has it (fast, no re-import), else spawn.

    The ``REPRO_START_METHOD`` environment variable overrides the choice —
    that is how CI runs the fault-injection suite under both start methods
    without threading a parameter through every constructor.
    """
    methods = multiprocessing.get_all_start_methods()
    override = os.environ.get("REPRO_START_METHOD")
    if override:
        if override not in methods:
            raise ConfigurationError(
                "REPRO_START_METHOD=%r is not a start method this platform "
                "supports (%s)" % (override, ", ".join(methods)))
        return override
    return "fork" if "fork" in methods else "spawn"


# --------------------------------------------------------------------------- #
# Worker side
# --------------------------------------------------------------------------- #

def _describe_shard(shard: HIDictionary) -> Dict[str, object]:
    """The capability descriptor a worker returns when it adopts a shard.

    ``methods`` lists the shard's public callables so the parent-side proxy
    can expose exactly the remote surface (``predecessor``, ``level_of``,
    ...) without guessing — a proxy must not pretend a method exists that
    the hosted structure lacks.
    """
    methods = sorted(
        name for name in dir(shard)
        if not name.startswith("_") and callable(getattr(shard, name, None)))
    return {
        "methods": methods,
        "registry_name": getattr(shard, "registry_name",
                                 type(shard).__name__),
    }


def _open_oplog(spec: Mapping[str, object]):
    """Open the worker-side op log a hosting command described."""
    # Imported lazily: the replication package imports this module, so a
    # top-level import would be circular; workers pay the lookup once.
    from repro.replication.oplog import OpLog

    return OpLog(**spec)


def _insert_batch(structure, log, trip, pairs, dirty) -> int:
    """Apply one insert batch; commit now, or defer into ``dirty``.

    ``dirty`` is the group-commit accumulator a ``__multi__`` crossing
    passes down: when set, the log is registered there instead of fsynced
    per batch, and the crossing commits every dirty log once at its end —
    the applied prefix still reaches the OS per append, and the command is
    only acknowledged after the group commit, so the durability contract
    is unchanged.
    """
    insert = structure.insert
    count = 0
    try:
        with child_span("worker.apply.insert") as span:
            for key, value in pairs:
                trip("worker.insert")
                insert(key, value)
                if log is not None:
                    log.append("insert", key, value)
                count += 1
            span.tag("keys", count)
    finally:
        if log is not None:
            if dirty is None:
                log.commit()  # the applied prefix is durable even on error
            else:
                dirty.append(log)
    return count


def _delete_batch(structure, log, trip, keys, dirty) -> List[object]:
    delete = structure.delete
    values: List[object] = []
    try:
        with child_span("worker.apply.delete") as span:
            for key in keys:
                trip("worker.delete")
                values.append(delete(key))
                if log is not None:
                    log.append("delete", key)
            span.tag("keys", len(values))
    finally:
        if log is not None:
            if dirty is None:
                log.commit()
            else:
                dirty.append(log)
    return values


def _shm_request(channel, trip, args) -> List[object]:
    """Decode one request frame the dispatch header described."""
    offset, length, count = args
    trip("worker.shm.request")
    with child_span("worker.decode") as span:
        span.tag("bytes", length)
        return channel.codec.decode(channel.request.read(offset, length),
                                    count)


def _shm_values_reply(channel, trip, values) -> object:
    """Stage ``values`` in the reply ring, or return them raw to fall back.

    Deleted values entered the store through *some* plane, so they are not
    guaranteed codec-encodable even when the keys were; un-encodable (or
    oversized) value sets ride the pickled pipe for this reply only.
    """
    blob = channel.codec.try_encode(values)
    if blob is None:
        return values
    try:
        offset = channel.reply.write(
            blob, tripwire=lambda: trip("worker.shm.reply"))
    except CapacityError:
        return values
    return shm_reply_descriptor("records", offset, len(blob), len(values))


def _execute(engines: Dict[int, DictionaryEngine], logs: Dict[int, object],
             trip, channel, shard_id: int, method: str, args: tuple,
             dirty: Optional[list] = None) -> object:
    """Dispatch one command against the hosted shard (worker side).

    ``logs`` maps shard ids to their op logs (primaries of a durable
    engine only): every acknowledged mutation is appended *here*, by the
    process that applied it, with one fsync batch per command — so after a
    crash the log holds exactly the operations the lost structure had
    applied.  ``trip`` is the fail-point hook the fault-injection suite
    arms to kill the worker at exact operation boundaries.  ``channel`` is
    the worker's shared-memory channel (``None`` on the pipe plane) and
    ``dirty`` the enclosing ``__multi__`` crossing's group-commit
    accumulator.
    """
    if method == "__multi__":
        # One coalesced crossing: execute every sub-command, capturing
        # per-sub outcomes, then group-commit each distinct dirty op log
        # exactly once — one fsync batch per worker per engine-level bulk
        # call instead of one per shard copy.
        from repro.replication.oplog import commit_group

        replies: List[Tuple[str, object]] = []
        group_dirty: List[object] = []
        try:
            for sub_id, sub_method, sub_args in args[0]:
                try:
                    replies.append(("ok", _execute(
                        engines, logs, trip, channel, sub_id, sub_method,
                        sub_args, dirty=group_dirty)))
                except Exception as error:
                    replies.append(("err", error))
        finally:
            commit_group(group_dirty)
        return ("__multi__", replies)
    if method == "__host__":
        shard = args[0]
        engines[shard_id] = DictionaryEngine(shard)
        if len(args) > 1 and args[1] is not None:
            logs[shard_id] = _open_oplog(args[1])
        return _describe_shard(shard)
    if method == "__drop__":
        del engines[shard_id]
        log = logs.pop(shard_id, None)
        if log is not None:
            log.close()
        return None
    if method == "__ping__":
        return "pong"
    if method == "__promote__":
        # A replica hosted here becomes the primary for ``shard_id``: re-key
        # its engine and open the shard's (fresh) op log, since the old log
        # described the dead primary, not the promoted copy.
        replica_id, oplog_spec = args
        engines[shard_id] = engines.pop(replica_id)
        stale = logs.pop(shard_id, None)
        if stale is not None:
            stale.close()
        if oplog_spec is not None:
            logs[shard_id] = _open_oplog(oplog_spec)
        return _describe_shard(engines[shard_id].structure)
    engine = engines[shard_id]
    structure = engine.structure
    log = logs.get(shard_id)
    # The batched bulk paths: one command per shard per engine-level call,
    # each with a pipe (pickled batch) and an shm (binary frame) spelling.
    if method == "insert_batch":
        return _insert_batch(structure, log, trip, args[0], dirty)
    if method == "insert_batch_shm":
        pairs = _shm_request(channel, trip, args)
        return _insert_batch(structure, log, trip, pairs, dirty)
    if method == "delete_batch":
        return _delete_batch(structure, log, trip, args[0], dirty)
    if method == "delete_batch_shm":
        keys = _shm_request(channel, trip, args)
        values = _delete_batch(structure, log, trip, keys, dirty)
        return _shm_values_reply(channel, trip, values)
    if method == "contains_batch":
        contains = structure.contains
        with child_span("worker.apply.contains"):
            return [contains(key) for key in args[0]]
    if method == "contains_batch_shm":
        keys = _shm_request(channel, trip, args)
        contains = structure.contains
        with child_span("worker.apply.contains"):
            flags = [contains(key) for key in keys]
        blob = channel.codec.encode_bitmap(flags)
        try:
            offset = channel.reply.write(
                blob, tripwire=lambda: trip("worker.shm.reply"))
        except CapacityError:  # pragma: no cover - bitmap of a huge batch
            return flags
        return shm_reply_descriptor("bits", offset, len(blob), len(flags))
    if method in ("insert", "upsert", "delete"):
        # Routed point mutations (including the migration traffic the
        # elastic resizes push through the shard proxies) log one committed
        # frame each.
        trip("worker." + method)
        result = getattr(structure, method)(*args)
        if log is not None:
            log.append(method, args[0], args[1] if len(args) > 1 else None)
            log.commit()
        return result
    if method == "__checkpoint__":
        # One atomic conversation: the returned slot array and log barrier
        # offset describe the same instant (no other command can interleave
        # because the parent keeps at most one outstanding per worker).
        slots = list(structure.snapshot_slots())
        trip("worker.checkpoint")
        return slots, (log.barrier() if log is not None else None)
    if method == "__barrier__":
        # A durability sync point without a snapshot: commit a barrier
        # frame and report how many delete frames preceded it since the
        # last one — the signal secure durability mode escalates on.
        if log is None:
            return None, 0
        deletes = log.deletes_since_barrier
        trip("worker.barrier")
        return log.barrier(), deletes
    if method == "__compact__":
        if log is None:
            return None, 0
        old_base = log.base_offset
        new_base = log.compact(args[0])
        return new_base, (new_base - old_base) // log.frame_size
    if method == "__export__":
        # The whole structure pickles back to the parent — recovery uses it
        # to seed fresh replicas from a live copy.
        return structure
    if method == "__digest__":
        # The canonical HI digest of the hosted copy, computed worker-side
        # so anti-entropy ships one hex string per copy instead of every
        # slot array.  Canonical layouts are a pure function of (key set,
        # seed), so two copies that applied the same operation stream hash
        # identically — any mismatch is real divergence.
        fingerprint = None
        probe = getattr(structure, "audit_fingerprint", None)
        if callable(probe):
            fingerprint = probe()
        blob = repr((fingerprint,
                     tuple(structure.snapshot_slots()))).encode("utf-8")
        return hashlib.sha256(blob).hexdigest()
    # Cost probes run through the worker's own engine so the measurement is
    # cleared and rolled back *inside* the worker — cumulative counters stay
    # byte-identical to a sequential engine's.
    if method == "search_io_cost":
        return engine.search_io_cost(args[0])
    if method == "range_io_cost":
        return engine.range_io_cost(args[0], args[1])
    if method == "keys":
        return list(structure)
    if method == "len":
        return len(structure)
    if method == "__method__":
        name, call_args = args
        return getattr(structure, name)(*call_args)
    # Plain structure methods: insert/delete/search/contains/items/
    # range_query/check/io_stats/snapshot_slots/audit_fingerprint/upsert/...
    return getattr(structure, method)(*args)


def _unpicklable_reply_error(method: str,
                             reply: Tuple[str, object]) -> WorkerCrashError:
    """The always-picklable stand-in for a reply that refused to pickle.

    Crash triage needs the *real* failure: when the unpicklable payload was
    itself an exception, its class name and formatted traceback travel
    inside the fallback error's message (the one representation guaranteed
    to survive the pipe).
    """
    status, payload = reply
    if status == "ok" and isinstance(payload, tuple) and len(payload) == 2 \
            and payload[0] == "__multi__":
        # A coalesced crossing: the offender may be a sub-command's error.
        for sub_status, sub_payload in payload[1]:
            if sub_status == "err" and isinstance(sub_payload, BaseException):
                return _unpicklable_reply_error(method,
                                                ("err", sub_payload))
    if status == "err" and isinstance(payload, BaseException):
        try:
            detail = "".join(traceback.format_exception(
                type(payload), payload, payload.__traceback__)).strip()
        except Exception:  # pragma: no cover - hostile __str__/__repr__
            detail = "<traceback unavailable>"
        return WorkerCrashError(
            "worker-side %s raised by %r did not pickle; original "
            "traceback:\n%s" % (type(payload).__name__, method, detail))
    return WorkerCrashError(
        "worker reply to %r (a %s) did not pickle"
        % (method, type(payload).__name__))


def _worker_main(conn, shm_spec: Optional[Dict[str, object]] = None) -> None:
    """The long-lived worker loop: receive commands, answer until shutdown."""
    # Lazy import (cycle: the replication package imports this module); the
    # fail points are inert unless REPRO_FAILPOINTS is armed in the
    # environment this worker inherited.  Re-read that environment here:
    # under fork the worker inherits the parent's parsed-failpoint cache,
    # and the parent legitimately trips parent-side fail points (op-log
    # compaction during recovery), which would otherwise freeze an empty
    # cache into every forked worker.
    from repro.replication.failpoints import reset, trip

    reset()
    channel = ShmChannel.attach(shm_spec) if shm_spec is not None else None
    engines: Dict[int, DictionaryEngine] = {}
    logs: Dict[int, object] = {}
    # Enabled on the first traced command; adopted spans finish into its
    # ring worker-side but primarily travel back on the reply for the
    # parent to graft.
    tracer = Tracer(enabled=True, ring=16)
    while True:
        try:
            message = conn.recv()
        except (EOFError, OSError):
            break  # parent went away; nothing left to serve
        except KeyboardInterrupt:  # pragma: no cover - interactive abort
            break
        shard_id, method, args = message[0], message[1], message[2]
        trace_header = message[3] if len(message) > 3 else None
        if method == "__shutdown__":
            try:
                conn.send(("ok", None))
            except (BrokenPipeError, OSError):  # pragma: no cover
                pass
            break
        if channel is not None:
            # The parent has read (and copied out) the previous command's
            # reply frames before sending this command, so the reply ring
            # restarts from its region base for every command.
            channel.reply.reset()
        span = None
        if trace_header is not None:
            span = tracer.adopt(trace_header, "worker." + method,
                                tags={"shard": shard_id, "pid": os.getpid()})
        try:
            if span is None:
                reply = ("ok", _execute(engines, logs, trip, channel,
                                        shard_id, method, args))
            else:
                with span:
                    reply = ("ok", _execute(engines, logs, trip, channel,
                                            shard_id, method, args))
        except Exception as error:
            reply = ("err", error)
        if span is not None:
            reply = reply + ([span.to_dict()],)
        try:
            conn.send(reply)
        except (BrokenPipeError, OSError):  # pragma: no cover
            break
        except Exception:
            # The result (or the exception) did not pickle; the parent is
            # still waiting, so answer with something that always does —
            # carrying the original class name and traceback along.
            try:
                conn.send(("err",
                           _unpicklable_reply_error(method, reply[:2])))
            except Exception:  # pragma: no cover
                break
    for log in logs.values():
        try:
            log.close()
        except Exception:  # pragma: no cover - best-effort flush
            pass
    if channel is not None:
        channel.close()
    conn.close()


# --------------------------------------------------------------------------- #
# Parent side: worker handle and shard proxy
# --------------------------------------------------------------------------- #

class _ShardWorker:
    """Parent-side handle of one worker process (pipe + liveness + shm).

    ``shm`` is the worker's shared-memory channel on the shm plane
    (``None`` on the pipe plane); the parent owns the segment's lifetime.
    ``stats`` is the engine's shared :class:`PlaneStats` — every worker of
    an engine bumps the same counters.
    """

    def __init__(self, context, shm: Optional[ShmChannel] = None,
                 stats: Optional[PlaneStats] = None) -> None:
        self.shm = shm
        self.stats = stats if stats is not None else PlaneStats()
        self._conn, child_conn = context.Pipe()
        spec = shm.spec() if shm is not None else None
        self._process = context.Process(target=_worker_main,
                                        args=(child_conn, spec), daemon=True)
        self._process.start()
        child_conn.close()
        self.shard_ids: set = set()
        self._down = False
        #: Worker span dicts that rode back on the last traced reply;
        #: the dispatch loop grafts (and clears) them after each receive.
        self.trace_spans: Optional[List[dict]] = None

    @property
    def connection(self):
        return self._conn

    @property
    def pid(self) -> Optional[int]:
        return self._process.pid

    def is_alive(self) -> bool:
        return not self._down and self._process.is_alive()

    def _crash(self, cause: Optional[BaseException],
               what: str) -> WorkerCrashError:
        self._down = True
        error = WorkerCrashError(
            "shard worker (pid %s, shards %s) %s; its in-memory shard "
            "state is lost — see restart_workers()"
            % (self.pid, sorted(self.shard_ids), what))
        if cause is not None:
            error.__cause__ = cause
        return error

    # -- data-plane lowering -------------------------------------------- #

    def _lower_one(self, method: str, args: object) -> Tuple[str, tuple]:
        """Stage one command for this worker's plane.

        A :class:`ShmPayload` becomes an ``*_shm`` dispatch header after
        its blob lands in the request ring; a payload that does not fit
        (or a worker without a channel) falls back to the staged pickled
        arguments.
        """
        if not isinstance(args, ShmPayload):
            return method, args
        payload = args
        if self.shm is not None:
            try:
                offset = self.shm.request.write(payload.blob)
            except CapacityError:
                offset = None
            if offset is not None:
                self.stats.frames += 1
                self.stats.bytes += len(payload.blob)
                return (method + "_shm",
                        (offset, len(payload.blob), payload.count))
        self.stats.fallbacks += 1
        return method, payload.raw_args

    def _lower(self, method: str, args: object) -> Tuple[str, tuple]:
        if self.shm is not None:
            # Each command's frames bump-allocate from the ring base; the
            # previous command's reply was fully consumed before this send.
            self.shm.request.reset()
        if method == "__multi__":
            subs = []
            for sub_id, sub_method, sub_args in args[0]:
                sub_method, sub_args = self._lower_one(sub_method, sub_args)
                subs.append((sub_id, sub_method, sub_args))
            return method, (subs,)
        return self._lower_one(method, args)

    def _hydrate(self, payload: object) -> object:
        """Resolve shm reply descriptors back into values (parent side)."""
        if self.shm is None:
            return payload
        if is_shm_reply(payload):
            _tag, kind, offset, length, count = payload
            blob = self.shm.reply.read(offset, length)
            self.stats.frames += 1
            self.stats.bytes += length
            if kind == "bits":
                return self.shm.codec.decode_bitmap(blob, count)
            return self.shm.codec.decode(blob, count)
        if isinstance(payload, tuple) and len(payload) == 2 \
                and payload[0] == "__multi__":
            return ("__multi__",
                    [(sub_status, self._hydrate(sub_payload)
                      if sub_status == "ok" else sub_payload)
                     for sub_status, sub_payload in payload[1]])
        return payload

    def send(self, shard_id: int, method: str, args: object,
             trace: Optional[dict] = None) -> None:
        if self._down:
            raise self._crash(None, "is already down")
        method, args = self._lower(method, args)
        try:
            if trace is None:
                self._conn.send((shard_id, method, args))
            else:
                # The trace header rides the pickled pipe as an optional
                # fourth tuple element — never the shm rings, so the
                # deterministic plane byte counters are identical with
                # tracing on or off.
                self._conn.send((shard_id, method, args, trace))
        except (BrokenPipeError, OSError) as error:
            raise self._crash(error, "refused a command (pipe broken)")

    def receive(self) -> Tuple[str, object]:
        try:
            message = self._conn.recv()
        except (EOFError, OSError) as error:
            raise self._crash(error, "died before answering")
        status, payload = message[0], message[1]
        self.trace_spans = message[2] if len(message) > 2 else None
        try:
            return status, self._hydrate(payload)
        except ShmFrameError as error:
            # A torn reply frame means the transport can no longer be
            # trusted; treat it exactly like a crashed worker.
            raise self._crash(error, "returned a torn shared-memory frame")

    def request(self, shard_id: int, method: str, args: tuple = ()) -> object:
        """One synchronous round-trip; re-raises worker-side exceptions."""
        self.send(shard_id, method, args)
        status, payload = self.receive()
        if status == "err":
            raise payload
        return payload

    def host(self, shard_id: int, shard: HIDictionary,
             oplog: Optional[Mapping[str, object]] = None
             ) -> Dict[str, object]:
        """Adopt ``shard`` under ``shard_id``; ``oplog`` (a keyword spec for
        :class:`~repro.replication.oplog.OpLog`) makes the hosting durable:
        the worker opens the log and appends every acknowledged mutation."""
        args = (shard,) if oplog is None else (shard, dict(oplog))
        descriptor = self.request(shard_id, "__host__", args)
        self.shard_ids.add(shard_id)
        return descriptor

    def drop(self, shard_id: int) -> None:
        self.request(shard_id, "__drop__")
        self.shard_ids.discard(shard_id)

    def shutdown(self, timeout: float = 5.0) -> None:
        """Ask the worker to exit; escalate to terminate if it will not."""
        if not self._down and self._process.is_alive():
            try:
                self._conn.send((0, "__shutdown__", ()))
                self._conn.recv()  # the shutdown acknowledgement
            except (BrokenPipeError, EOFError, OSError):
                pass
        self._down = True
        self._process.join(timeout)
        if self._process.is_alive():  # pragma: no cover - stuck worker
            self._process.terminate()
            self._process.join(1.0)
        self._conn.close()
        if self.shm is not None:
            self.shm.close()
            self.shm = None


class _MultiKey:
    """Dispatch key of a coalesced ``__multi__`` crossing.

    Wraps the original per-command keys in order, so reply demux (and
    whole-queue failure) can fan the single crossing's outcome back out to
    the commands it merged.
    """

    __slots__ = ("keys",)

    def __init__(self, keys: Tuple[object, ...]) -> None:
        self.keys = keys


def _expand_key(key: object) -> Tuple[object, ...]:
    return key.keys if isinstance(key, _MultiKey) else (key,)


class _ShardProxy(HIDictionary):
    """Parent-side stand-in for a worker-hosted shard.

    Implements the full :class:`~repro.api.protocol.HIDictionary` surface by
    forwarding each call to the owning worker; optional capabilities the
    hosted structure exposes (``predecessor``, ``level_of``, ...) are
    forwarded through ``__getattr__`` — but only the methods the worker
    reported at adoption time, so ``hasattr`` probes stay truthful.
    """

    def __init__(self, worker: _ShardWorker, shard_id: int,
                 descriptor: Dict[str, object]) -> None:
        self._worker = worker
        self._shard_id = shard_id
        self._remote_methods = frozenset(descriptor["methods"])
        self.registry_name = descriptor["registry_name"]

    @property
    def worker(self) -> _ShardWorker:
        return self._worker

    @property
    def shard_id(self) -> int:
        return self._shard_id

    def _call(self, method: str, *args: object) -> object:
        return self._worker.request(self._shard_id, method, args)

    # -- dictionary surface --------------------------------------------- #

    def insert(self, key: object, value: object = None) -> None:
        return self._call("insert", key, value)

    def upsert(self, key: object, value: object = None) -> bool:
        return self._call("upsert", key, value)

    def delete(self, key: object) -> object:
        return self._call("delete", key)

    def search(self, key: object) -> object:
        return self._call("search", key)

    def contains(self, key: object) -> bool:
        return self._call("contains", key)

    def items(self) -> List[Pair]:
        return self._call("items")

    def range_query(self, low: object, high: object):
        return self._call("range_query", low, high)

    def check(self) -> None:
        return self._call("check")

    def __len__(self) -> int:
        return self._call("len")

    def __iter__(self):
        return iter(self._call("keys"))

    # -- accounting / serialisation / auditing -------------------------- #

    def io_stats(self):
        return self._call("io_stats")

    def snapshot_slots(self) -> Sequence[object]:
        return self._call("snapshot_slots")

    def audit_fingerprint(self) -> object:
        return self._call("audit_fingerprint")

    # -- optional capabilities ------------------------------------------ #

    def __getattr__(self, name: str):
        if name.startswith("_"):
            raise AttributeError(name)
        if name in self.__dict__.get("_remote_methods", frozenset()):
            def remote_call(*args: object) -> object:
                return self._call("__method__", name, args)
            remote_call.__name__ = name
            return remote_call
        raise AttributeError(
            "worker-hosted shard %r has no method %r"
            % (self.__dict__.get("registry_name"), name))


# --------------------------------------------------------------------------- #
# The engine
# --------------------------------------------------------------------------- #

class ProcessShardedDictionaryEngine(ShardedDictionaryEngine):
    """A sharded engine whose shards live in long-lived worker processes.

    Construction adopts every shard of the wrapped
    :class:`~repro.api.sharded.ShardedDictionary` into a worker process
    (pickling the structure over the command pipe) and replaces it with a
    forwarding proxy.  Bulk operations ship one batched command per shard
    per call and collect replies as workers finish; point operations stay
    routed (one round-trip).  ``max_workers`` caps the process pool — with
    fewer workers than shards, workers host several shards each and those
    shards' batches serialize on their worker.

    With ``sample_operations=True`` the bulk operations fall back to the
    sequential per-operation path (samples are an ordered, shared log), like
    the thread engine.  Workers are daemonic; call :meth:`close` (or use the
    engine as a context manager) for a clean shutdown.
    """

    def __init__(self, structure: ShardedDictionary, *,
                 name: Optional[str] = None,
                 sample_operations: bool = False,
                 max_workers: Optional[int] = None,
                 start_method: Optional[str] = None,
                 plane: Optional[str] = None,
                 shm_capacity: Optional[int] = None) -> None:
        if max_workers is not None and (not isinstance(max_workers, int)
                                        or isinstance(max_workers, bool)
                                        or max_workers < 1):
            raise ConfigurationError(
                "max_workers must be an integer >= 1 (or None for one "
                "worker per shard), got %r" % (max_workers,))
        if shm_capacity is not None and (not isinstance(shm_capacity, int)
                                         or isinstance(shm_capacity, bool)
                                         or shm_capacity < 4096):
            raise ConfigurationError(
                "shm_capacity must be an integer >= 4096 bytes (or None "
                "for the default), got %r" % (shm_capacity,))
        self._plane = _resolve_plane(plane)
        self._shm_capacity = shm_capacity or DEFAULT_CAPACITY
        self._plane_stats = PlaneStats()
        self._plane_codec = BatchCodec(DEFAULT_PAYLOAD_SIZE)
        # Subclasses that host durable shards (the replicated engine) set
        # ``_durability_dir`` before delegating here, so this snapshot is
        # correct by the time any command is dispatched.
        self._durable_plane = getattr(self, "_durability_dir", None) is not None
        super().__init__(structure, name=name,
                         sample_operations=sample_operations)
        self._max_workers = max_workers
        self._mp_context = multiprocessing.get_context(
            start_method or _default_start_method())
        self._workers: List[_ShardWorker] = []
        self._worker_by_shard: Dict[int, _ShardWorker] = {}
        self._closed = False
        self._adopt_local_shards()

    # ------------------------------------------------------------------ #
    # Worker pool management
    # ------------------------------------------------------------------ #

    @property
    def num_workers(self) -> int:
        return len(self._workers)

    def worker_pids(self) -> List[int]:
        """The worker process ids, in spawn order (testing/ops hook)."""
        return [worker.pid for worker in self._workers]

    @property
    def plane(self) -> str:
        """The active data plane: ``"shm"`` or ``"pipe"``."""
        return self._plane

    def plane_stats(self) -> Dict[str, int]:
        """Deterministic data-plane counters (frames, bytes, fallbacks,
        coalesced commands, group-commit fsync batches) since construction.

        Every read republishes the counters into the metrics registry as
        ``plane.*`` gauges, so a registry snapshot carries the same
        worker-side fsync and frame-byte numbers as this dict.
        """
        self._plane_stats.merge_into(self.metrics)
        return self._plane_stats.as_dict()

    def _new_channel(self) -> Optional[ShmChannel]:
        return (ShmChannel.create(self._shm_capacity)
                if self._plane == "shm" else None)

    def _pick_worker(self) -> _ShardWorker:
        """A live worker for a new shard: spawn until the cap, then pack."""
        cap = self._max_workers or len(self._structure.shards)
        live = [worker for worker in self._workers if worker.is_alive()]
        if len(live) < cap:
            worker = _ShardWorker(self._mp_context, shm=self._new_channel(),
                                  stats=self._plane_stats)
            self._workers.append(worker)
            return worker
        return min(live, key=lambda worker: len(worker.shard_ids))

    def _adopt_local_shards(self) -> None:
        """Move every locally held shard into a worker, proxying it here."""
        if self._closed:
            raise ConfigurationError(
                "this process engine is closed; build a new one")
        structure = self._structure
        shards = structure._shards
        for position, shard in enumerate(shards):
            if isinstance(shard, _ShardProxy):
                continue
            shard_id = structure.shard_ids[position]
            worker = self._pick_worker()
            descriptor = worker.host(shard_id, shard)
            self._worker_by_shard[shard_id] = worker
            shards[position] = _ShardProxy(worker, shard_id, descriptor)
        self._shard_engine_cache = []

    @property
    def closed(self) -> bool:
        """Whether :meth:`close` has run (the worker pool is gone)."""
        return self._closed

    def close(self) -> None:
        """Shut every worker down cleanly.  Idempotent."""
        if self._closed:
            return
        self._closed = True
        for worker in self._workers:
            worker.shutdown()
        self._workers = []
        self._worker_by_shard = {}

    def __enter__(self) -> "ProcessShardedDictionaryEngine":
        return self

    def __exit__(self, exc_type, exc_value, traceback) -> None:
        self.close()

    def __del__(self) -> None:  # pragma: no cover - interpreter teardown
        try:
            self.close()
        except Exception:
            pass

    # ------------------------------------------------------------------ #
    # Crash handling
    # ------------------------------------------------------------------ #

    def dead_shard_positions(self) -> List[int]:
        """Shard positions whose worker process is no longer alive.

        Raises :class:`~repro.errors.ConfigurationError` once the engine is
        closed — a shut-down engine has no workers to inspect or restart.
        """
        if self._closed:
            raise ConfigurationError(
                "this process engine is closed; build a new one")
        structure = self._structure
        return [position for position, shard_id
                in enumerate(structure.shard_ids)
                if not self._worker_by_shard[shard_id].is_alive()]

    def restart_workers(self) -> List[int]:
        """Respawn dead workers with freshly built *empty* shards.

        A worker owns its shards' only copy, so a crash loses their data;
        this rebuilds each lost shard through the same registry wiring the
        engine was constructed with (drawing the next seeds of the
        construction seed stream) and hosts it in a new worker.  Returns
        the shard positions that were rebuilt — their keys are gone, the
        other shards are untouched.  Raises
        :class:`~repro.errors.ConfigurationError` for hand-assembled
        dictionaries with no recorded build context.
        """
        structure = self._structure
        lost = self.dead_shard_positions()
        if not lost:
            return []
        context = structure._build_context
        if context is None:
            raise ConfigurationError(
                "this sharded dictionary was assembled from pre-built "
                "shards; the engine cannot rebuild lost shards without a "
                "registry build context")
        from repro.api.registry import make_dictionary

        dead_workers = {self._worker_by_shard[structure.shard_ids[position]]
                        for position in lost}
        for position in lost:
            shard_id = structure.shard_ids[position]
            shard = make_dictionary(structure.inner_names[position],
                                    block_size=context["block_size"],
                                    cache_blocks=context["cache_blocks"],
                                    seed=context["rng"].getrandbits(64),
                                    backend=context["backend"],
                                    **context["inner_params"])
            worker = self._pick_worker()
            descriptor = worker.host(shard_id, shard)
            self._worker_by_shard[shard_id] = worker
            structure._shards[position] = _ShardProxy(worker, shard_id,
                                                      descriptor)
        for worker in dead_workers:
            worker.shutdown()
            if worker in self._workers:
                self._workers.remove(worker)
        self._shard_engine_cache = []
        return lost

    # ------------------------------------------------------------------ #
    # Command dispatch
    # ------------------------------------------------------------------ #

    def _worker_for_position(self, position: int) -> _ShardWorker:
        shard_id = self._structure.shard_ids[position]
        worker = self._worker_by_shard.get(shard_id)
        if worker is None:
            # The mapping only loses entries when the engine shut down; a
            # bare KeyError here would escape the library's error hierarchy.
            raise WorkerCrashError(
                "no worker hosts shard id %d%s"
                % (shard_id, " (the engine is closed)" if self._closed
                   else ""))
        return worker

    def _request(self, position: int, method: str, args: tuple = ()) -> object:
        shard_id = self._structure.shard_ids[position]
        return self._worker_for_position(position).request(shard_id, method,
                                                           args)

    def _drive_commands(self, commands: Sequence[
            Tuple[object, "_ShardWorker", int, str, tuple]]
            ) -> Tuple[Dict[object, object], Dict[object, BaseException]]:
        """Run ``(key, worker, engine id, method, args)`` commands; return
        ``(results, errors)`` keyed by ``key``.

        The shared dispatch loop behind :meth:`_scatter` and the replicated
        engine's primary-plus-replica fan-out: at most one command is
        outstanding per worker (a second send could deadlock against a
        worker blocked on a large reply); commands for the same worker run
        back to back; a dead worker fails its whole queue.  Callers decide
        which errors are fatal — the plain engine raises all of them, the
        replicated engine demotes replica failures to replica drops.
        """
        queues: Dict[_ShardWorker, Deque[Tuple[object, _ShardWorker, int,
                                               str, tuple]]] = {}
        for command in commands:
            queues.setdefault(command[1], deque()).append(command)
        for worker, queue in queues.items():
            if len(queue) > 1:
                # Coalesce the worker's whole dispatch window into one
                # crossing: the subs run back to back worker-side (same
                # order the queue would have run them) and their op logs
                # group-commit once at the crossing's end.
                keys = tuple(entry[0] for entry in queue)
                subs = [(entry[2], entry[3], entry[4]) for entry in queue]
                self._plane_stats.coalesced += len(queue) - 1
                queue.clear()
                queue.append((_MultiKey(keys), worker, -1,
                              "__multi__", (subs,)))
        results: Dict[object, object] = {}
        errors: Dict[object, BaseException] = {}
        # The propagation header for this dispatch window: present only
        # when tracing is enabled AND an engine-level span is active on
        # this thread (the bulk operations open one around dispatch).
        tracer = self.tracer
        trace_header = tracer.header()

        def fail_worker(worker: _ShardWorker, key: object,
                        error: BaseException) -> None:
            for sub_key in _expand_key(key):
                errors[sub_key] = error
            for queued in queues[worker]:
                for sub_key in _expand_key(queued[0]):
                    errors[sub_key] = error
            queues[worker].clear()

        def settle(key: object, status: str, payload: object) -> None:
            if isinstance(key, _MultiKey) and status == "ok":
                _tag, replies = payload
                for sub_key, (sub_status, sub_payload) in zip(key.keys,
                                                              replies):
                    settle(sub_key, sub_status, sub_payload)
            elif status == "err":
                for sub_key in _expand_key(key):
                    errors[sub_key] = payload
            else:
                results[key] = payload

        def dispatch_next(worker: _ShardWorker) -> None:
            while queues[worker]:
                key, _worker, engine_id, method, args = \
                    queues[worker].popleft()
                try:
                    worker.send(engine_id, method, args, trace=trace_header)
                except WorkerCrashError as error:
                    fail_worker(worker, key, error)
                    continue
                if trace_header is not None:
                    tracer.note_crossing()
                self._note_fsync_batch(engine_id, method, args)
                outstanding[worker.connection] = (worker, key)
                return

        outstanding: Dict[object, Tuple[_ShardWorker, object]] = {}
        for worker in queues:
            dispatch_next(worker)
        while outstanding:
            for connection in wait(list(outstanding)):
                worker, key = outstanding.pop(connection)
                try:
                    status, payload = worker.receive()
                except WorkerCrashError as error:
                    fail_worker(worker, key, error)
                    continue
                if worker.trace_spans:
                    tracer.graft(worker.trace_spans)
                    worker.trace_spans = None
                settle(key, status, payload)
                dispatch_next(worker)
        return results, errors

    def _note_fsync_batch(self, engine_id: int, method: str,
                          args: object) -> None:
        """Count one group-commit point per durable mutating crossing.

        Replica hostings use negative engine ids; only primary mutations
        carry an op log, so only they contribute a commit point.
        """
        if not self._durable_plane:
            return
        if method == "__multi__":
            mutates = any(sub_method in _BULK_MUTATORS and sub_id >= 0
                          for sub_id, sub_method, _args in args[0])
        else:
            mutates = method in _BULK_MUTATORS and engine_id >= 0
        if mutates:
            self._plane_stats.fsync_batches += 1

    def _scatter(self, commands: Sequence[Tuple[int, str, tuple]]
                 ) -> Dict[int, object]:
        """Run per-shard commands concurrently; results keyed by position.

        Worker-side exceptions — and
        :class:`~repro.errors.WorkerCrashError` for workers that die — are
        re-raised for the smallest shard position, matching which failure
        the sequential engine would surface first.
        """
        structure = self._structure
        results, errors = self._drive_commands(
            [(position, self._worker_for_position(position),
              structure.shard_ids[position], method, args)
             for position, method, args in commands])
        if errors:
            raise errors[min(errors)]
        return results

    # ------------------------------------------------------------------ #
    # Batched bulk operations (one round-trip per shard per call)
    # ------------------------------------------------------------------ #

    def _bulk_args(self, batch: Sequence[object]) -> object:
        """Stage one bulk batch for its data plane.

        On the shm plane, a codec-encodable batch becomes a
        :class:`~repro.api.shm_plane.ShmPayload` the worker handle lowers
        into its request ring at send time (falling back to the pickled
        arguments if the ring is full); anything the codec cannot encode
        exactly rides the pickled pipe unchanged.
        """
        if self._plane != "shm":
            return (batch,)
        blob = self._plane_codec.try_encode(batch)
        if blob is None:
            self._plane_stats.fallbacks += 1
            return (batch,)
        return ShmPayload("records", blob, len(batch), (batch,))

    def insert_many(self, entries: Iterable[object]) -> int:
        """Insert keys or pairs: one ``insert_batch`` command per shard."""
        if self.sample_operations:
            return super().insert_many(entries)
        batches, count = self._grouped_entries(entries)
        with self._bulk_op("insert_many"):
            self._scatter([(position, "insert_batch",
                            self._bulk_args(batch))
                           for position, batch in enumerate(batches)
                           if batch])
        self.metrics.inc("engine.keys.insert_many", count)
        return count

    def delete_many(self, keys: Iterable[object]) -> List[object]:
        """Delete per-shard batches in parallel; values in input order."""
        if self.sample_operations:
            return super().delete_many(keys)
        keys, batches = self._grouped_positions(keys)
        values: List[object] = [None] * len(keys)
        with self._bulk_op("delete_many"):
            results = self._scatter(
                [(position, "delete_batch",
                  self._bulk_args([key for _at, key in batch]))
                 for position, batch in enumerate(batches) if batch])
        self.metrics.inc("engine.keys.delete_many", len(keys))
        for position, batch in enumerate(batches):
            if batch:
                for (at, _key), value in zip(batch, results[position]):
                    values[at] = value
        return values

    def contains_many(self, keys: Iterable[object]) -> List[bool]:
        """Membership via parallel shard batches; input order preserved."""
        if self.sample_operations:
            return super().contains_many(keys)
        keys, batches = self._grouped_positions(keys)
        found: List[bool] = [False] * len(keys)
        with self._bulk_op("contains_many"):
            results = self._scatter(
                [(position, "contains_batch",
                  self._bulk_args([key for _at, key in batch]))
                 for position, batch in enumerate(batches) if batch])
        self.metrics.inc("engine.keys.contains_many", len(keys))
        for position, batch in enumerate(batches):
            if batch:
                for (at, _key), flag in zip(batch, results[position]):
                    found[at] = flag
        return found

    # ------------------------------------------------------------------ #
    # Shard-aware cost probes (measured and rolled back in the worker)
    # ------------------------------------------------------------------ #

    def search_io_cost(self, key: object) -> int:
        return self._request(self._structure.shard_of(key),
                             "search_io_cost", (key,))

    def range_io_cost_breakdown(self, low: object, high: object
                                ) -> Tuple[List[Pair], List[int]]:
        self._require_range_support()
        results = self._scatter([(position, "range_io_cost", (low, high))
                                 for position in range(self.num_shards)])
        merged = [results[position][0] for position in range(self.num_shards)]
        costs = [results[position][1] for position in range(self.num_shards)]
        pairs = list(heapq.merge(*merged, key=lambda pair: pair[0]))
        return pairs, costs

    # ------------------------------------------------------------------ #
    # Elastic resizing (migration runs through the proxies)
    # ------------------------------------------------------------------ #

    def add_shard(self, shard: Optional[HIDictionary] = None,
                  inner: Optional[str] = None) -> MigrationReport:
        """Grow by one shard; the new shard is adopted into a worker.

        The migration itself runs through the inherited canonical-order
        machinery (deletes and re-inserts flow through the shard proxies),
        so layouts match the sequential engine's resize byte for byte; the
        freshly built shard is hosted in a worker once the migration
        committed.
        """
        report = super().add_shard(shard=shard, inner=inner)
        self._adopt_local_shards()
        return report

    def remove_shard(self, position: int) -> MigrationReport:
        """Retire one shard and its worker hosting (after migration)."""
        if isinstance(position, int) and not isinstance(position, bool) \
                and 0 <= position < len(self._structure.shards):
            shard_id: Optional[int] = self._structure.shard_ids[position]
        else:
            shard_id = None  # let the structure raise its uniform error
        report = super().remove_shard(position)
        if shard_id is not None:
            worker = self._worker_by_shard.pop(shard_id)
            try:
                worker.drop(shard_id)
            except WorkerCrashError:
                pass
            if not worker.shard_ids:
                worker.shutdown()
                self._workers.remove(worker)
        return report
