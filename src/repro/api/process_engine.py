"""Process-parallel sharded engine: long-lived workers own the shards.

PR 3's :class:`~repro.api.sharded.ParallelShardedDictionaryEngine` fans shard
batches out over a thread pool, but pure-Python shard work is GIL-bound: the
threads serialize and the "parallel" engine buys nothing on CPU-bound inners.
This module is the escape hatch: :class:`ProcessShardedDictionaryEngine`
hosts every shard's structure inside a long-lived **worker process** and
drives it over a pickled command protocol, so per-shard batches execute on
separate cores.

Design
------

* **Workers own the state.**  At construction the engine pickles each local
  shard to its worker (one worker per shard by default, fewer when
  ``max_workers`` caps the pool — workers then host several shards).  The
  parent's shard slots are replaced by :class:`_ShardProxy` stand-ins that
  forward every dictionary call to the owning worker, so *all* of the
  inherited :class:`~repro.api.sharded.ShardedDictionary` machinery —
  routing, merged iteration, elastic ``add_shard``/``remove_shard``
  migration, per-shard snapshots, ``check()`` — keeps working unchanged.
* **One round-trip per shard per bulk call.**  ``insert_many`` /
  ``delete_many`` / ``contains_many`` ship each shard's whole batch as a
  single command (amortizing IPC exactly the way PR 2's batched routing
  amortized dispatch), with at most one outstanding command per worker so
  a large payload can never deadlock against a worker blocked on its reply.
* **Probes roll back worker-side.**  ``search_io_cost`` / ``range_io_cost``
  run the cold-cache measurement inside the worker's own
  :class:`~repro.api.engine.DictionaryEngine`, so cumulative ``io_stats()``
  stay byte-identical to the sequential engine's.
* **Crashes are contained.**  A worker that dies mid-conversation raises
  :class:`~repro.errors.WorkerCrashError` naming the shard; commands to
  surviving workers keep working, and :meth:`restart_workers` respawns dead
  workers with freshly built (empty) shards, reporting which shard
  positions lost their data.  :meth:`close` (or the context-manager exit)
  shuts every worker down cleanly.

The byte-identity guarantee matches the thread engine's: bulk calls that
*succeed* return results, layouts and counters identical to the sequential
engine; when a batch raises, the same exception surfaces, but other shards'
already-dispatched batches run to completion.

Build one through the usual convenience constructor::

    from repro.api import make_sharded_engine

    with make_sharded_engine("hi-skiplist", shards=4,
                             parallel="process") as engine:
        engine.insert_many((key, key) for key in range(100_000))
        engine.contains_many(range(0, 100_000, 7))
"""

from __future__ import annotations

import heapq
import multiprocessing
import os
from collections import deque
from multiprocessing.connection import wait
from typing import (
    Deque,
    Dict,
    Iterable,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
)

from repro.api.engine import DictionaryEngine
from repro.api.protocol import HIDictionary, Pair
from repro.api.sharded import (
    MigrationReport,
    ShardedDictionary,
    ShardedDictionaryEngine,
)
from repro.errors import ConfigurationError, WorkerCrashError

#: One parent->worker command: ``(shard_id, method, args)``.
Command = Tuple[int, str, tuple]


def _default_start_method() -> str:
    """``fork`` where the platform has it (fast, no re-import), else spawn.

    The ``REPRO_START_METHOD`` environment variable overrides the choice —
    that is how CI runs the fault-injection suite under both start methods
    without threading a parameter through every constructor.
    """
    methods = multiprocessing.get_all_start_methods()
    override = os.environ.get("REPRO_START_METHOD")
    if override:
        if override not in methods:
            raise ConfigurationError(
                "REPRO_START_METHOD=%r is not a start method this platform "
                "supports (%s)" % (override, ", ".join(methods)))
        return override
    return "fork" if "fork" in methods else "spawn"


# --------------------------------------------------------------------------- #
# Worker side
# --------------------------------------------------------------------------- #

def _describe_shard(shard: HIDictionary) -> Dict[str, object]:
    """The capability descriptor a worker returns when it adopts a shard.

    ``methods`` lists the shard's public callables so the parent-side proxy
    can expose exactly the remote surface (``predecessor``, ``level_of``,
    ...) without guessing — a proxy must not pretend a method exists that
    the hosted structure lacks.
    """
    methods = sorted(
        name for name in dir(shard)
        if not name.startswith("_") and callable(getattr(shard, name, None)))
    return {
        "methods": methods,
        "registry_name": getattr(shard, "registry_name",
                                 type(shard).__name__),
    }


def _open_oplog(spec: Mapping[str, object]):
    """Open the worker-side op log a hosting command described."""
    # Imported lazily: the replication package imports this module, so a
    # top-level import would be circular; workers pay the lookup once.
    from repro.replication.oplog import OpLog

    return OpLog(**spec)


def _execute(engines: Dict[int, DictionaryEngine], logs: Dict[int, object],
             trip, shard_id: int, method: str, args: tuple) -> object:
    """Dispatch one command against the hosted shard (worker side).

    ``logs`` maps shard ids to their op logs (primaries of a durable
    engine only): every acknowledged mutation is appended *here*, by the
    process that applied it, with one fsync batch per command — so after a
    crash the log holds exactly the operations the lost structure had
    applied.  ``trip`` is the fail-point hook the fault-injection suite
    arms to kill the worker at exact operation boundaries.
    """
    if method == "__host__":
        shard = args[0]
        engines[shard_id] = DictionaryEngine(shard)
        if len(args) > 1 and args[1] is not None:
            logs[shard_id] = _open_oplog(args[1])
        return _describe_shard(shard)
    if method == "__drop__":
        del engines[shard_id]
        log = logs.pop(shard_id, None)
        if log is not None:
            log.close()
        return None
    if method == "__ping__":
        return "pong"
    if method == "__promote__":
        # A replica hosted here becomes the primary for ``shard_id``: re-key
        # its engine and open the shard's (fresh) op log, since the old log
        # described the dead primary, not the promoted copy.
        replica_id, oplog_spec = args
        engines[shard_id] = engines.pop(replica_id)
        stale = logs.pop(shard_id, None)
        if stale is not None:
            stale.close()
        if oplog_spec is not None:
            logs[shard_id] = _open_oplog(oplog_spec)
        return _describe_shard(engines[shard_id].structure)
    engine = engines[shard_id]
    structure = engine.structure
    log = logs.get(shard_id)
    # The batched bulk paths: one command per shard per engine-level call.
    if method == "insert_batch":
        insert = structure.insert
        count = 0
        try:
            for key, value in args[0]:
                trip("worker.insert")
                insert(key, value)
                if log is not None:
                    log.append("insert", key, value)
                count += 1
        finally:
            if log is not None:
                log.commit()  # the applied prefix is durable even on error
        return count
    if method == "delete_batch":
        delete = structure.delete
        values = []
        try:
            for key in args[0]:
                trip("worker.delete")
                values.append(delete(key))
                if log is not None:
                    log.append("delete", key)
        finally:
            if log is not None:
                log.commit()
        return values
    if method == "contains_batch":
        contains = structure.contains
        return [contains(key) for key in args[0]]
    if method in ("insert", "upsert", "delete"):
        # Routed point mutations (including the migration traffic the
        # elastic resizes push through the shard proxies) log one committed
        # frame each.
        trip("worker." + method)
        result = getattr(structure, method)(*args)
        if log is not None:
            log.append(method, args[0], args[1] if len(args) > 1 else None)
            log.commit()
        return result
    if method == "__checkpoint__":
        # One atomic conversation: the returned slot array and log barrier
        # offset describe the same instant (no other command can interleave
        # because the parent keeps at most one outstanding per worker).
        slots = list(structure.snapshot_slots())
        trip("worker.checkpoint")
        return slots, (log.barrier() if log is not None else None)
    if method == "__compact__":
        return log.compact(args[0]) if log is not None else None
    if method == "__export__":
        # The whole structure pickles back to the parent — recovery uses it
        # to seed fresh replicas from a live copy.
        return structure
    # Cost probes run through the worker's own engine so the measurement is
    # cleared and rolled back *inside* the worker — cumulative counters stay
    # byte-identical to a sequential engine's.
    if method == "search_io_cost":
        return engine.search_io_cost(args[0])
    if method == "range_io_cost":
        return engine.range_io_cost(args[0], args[1])
    if method == "keys":
        return list(structure)
    if method == "len":
        return len(structure)
    if method == "__method__":
        name, call_args = args
        return getattr(structure, name)(*call_args)
    # Plain structure methods: insert/delete/search/contains/items/
    # range_query/check/io_stats/snapshot_slots/audit_fingerprint/upsert/...
    return getattr(structure, method)(*args)


def _worker_main(conn) -> None:
    """The long-lived worker loop: receive commands, answer until shutdown."""
    # Lazy import (cycle: the replication package imports this module); the
    # fail points are inert unless REPRO_FAILPOINTS is armed in the
    # environment this worker inherited.
    from repro.replication.failpoints import trip

    engines: Dict[int, DictionaryEngine] = {}
    logs: Dict[int, object] = {}
    while True:
        try:
            shard_id, method, args = conn.recv()
        except (EOFError, OSError):
            break  # parent went away; nothing left to serve
        except KeyboardInterrupt:  # pragma: no cover - interactive abort
            break
        if method == "__shutdown__":
            try:
                conn.send(("ok", None))
            except (BrokenPipeError, OSError):  # pragma: no cover
                pass
            break
        try:
            reply = ("ok", _execute(engines, logs, trip, shard_id, method,
                                    args))
        except Exception as error:
            reply = ("err", error)
        try:
            conn.send(reply)
        except (BrokenPipeError, OSError):  # pragma: no cover
            break
        except Exception:
            # The result (or the exception) did not pickle; the parent is
            # still waiting, so answer with something that always does.
            try:
                conn.send(("err", WorkerCrashError(
                    "worker reply to %r did not pickle" % (method,))))
            except Exception:  # pragma: no cover
                break
    for log in logs.values():
        try:
            log.close()
        except Exception:  # pragma: no cover - best-effort flush
            pass
    conn.close()


# --------------------------------------------------------------------------- #
# Parent side: worker handle and shard proxy
# --------------------------------------------------------------------------- #

class _ShardWorker:
    """Parent-side handle of one worker process (pipe + liveness)."""

    def __init__(self, context) -> None:
        self._conn, child_conn = context.Pipe()
        self._process = context.Process(target=_worker_main,
                                        args=(child_conn,), daemon=True)
        self._process.start()
        child_conn.close()
        self.shard_ids: set = set()
        self._down = False

    @property
    def connection(self):
        return self._conn

    @property
    def pid(self) -> Optional[int]:
        return self._process.pid

    def is_alive(self) -> bool:
        return not self._down and self._process.is_alive()

    def _crash(self, cause: Optional[BaseException],
               what: str) -> WorkerCrashError:
        self._down = True
        error = WorkerCrashError(
            "shard worker (pid %s, shards %s) %s; its in-memory shard "
            "state is lost — see restart_workers()"
            % (self.pid, sorted(self.shard_ids), what))
        if cause is not None:
            error.__cause__ = cause
        return error

    def send(self, shard_id: int, method: str, args: tuple) -> None:
        if self._down:
            raise self._crash(None, "is already down")
        try:
            self._conn.send((shard_id, method, args))
        except (BrokenPipeError, OSError) as error:
            raise self._crash(error, "refused a command (pipe broken)")

    def receive(self) -> Tuple[str, object]:
        try:
            return self._conn.recv()
        except (EOFError, OSError) as error:
            raise self._crash(error, "died before answering")

    def request(self, shard_id: int, method: str, args: tuple = ()) -> object:
        """One synchronous round-trip; re-raises worker-side exceptions."""
        self.send(shard_id, method, args)
        status, payload = self.receive()
        if status == "err":
            raise payload
        return payload

    def host(self, shard_id: int, shard: HIDictionary,
             oplog: Optional[Mapping[str, object]] = None
             ) -> Dict[str, object]:
        """Adopt ``shard`` under ``shard_id``; ``oplog`` (a keyword spec for
        :class:`~repro.replication.oplog.OpLog`) makes the hosting durable:
        the worker opens the log and appends every acknowledged mutation."""
        args = (shard,) if oplog is None else (shard, dict(oplog))
        descriptor = self.request(shard_id, "__host__", args)
        self.shard_ids.add(shard_id)
        return descriptor

    def drop(self, shard_id: int) -> None:
        self.request(shard_id, "__drop__")
        self.shard_ids.discard(shard_id)

    def shutdown(self, timeout: float = 5.0) -> None:
        """Ask the worker to exit; escalate to terminate if it will not."""
        if not self._down and self._process.is_alive():
            try:
                self._conn.send((0, "__shutdown__", ()))
                self._conn.recv()  # the shutdown acknowledgement
            except (BrokenPipeError, EOFError, OSError):
                pass
        self._down = True
        self._process.join(timeout)
        if self._process.is_alive():  # pragma: no cover - stuck worker
            self._process.terminate()
            self._process.join(1.0)
        self._conn.close()


class _ShardProxy(HIDictionary):
    """Parent-side stand-in for a worker-hosted shard.

    Implements the full :class:`~repro.api.protocol.HIDictionary` surface by
    forwarding each call to the owning worker; optional capabilities the
    hosted structure exposes (``predecessor``, ``level_of``, ...) are
    forwarded through ``__getattr__`` — but only the methods the worker
    reported at adoption time, so ``hasattr`` probes stay truthful.
    """

    def __init__(self, worker: _ShardWorker, shard_id: int,
                 descriptor: Dict[str, object]) -> None:
        self._worker = worker
        self._shard_id = shard_id
        self._remote_methods = frozenset(descriptor["methods"])
        self.registry_name = descriptor["registry_name"]

    @property
    def worker(self) -> _ShardWorker:
        return self._worker

    @property
    def shard_id(self) -> int:
        return self._shard_id

    def _call(self, method: str, *args: object) -> object:
        return self._worker.request(self._shard_id, method, args)

    # -- dictionary surface --------------------------------------------- #

    def insert(self, key: object, value: object = None) -> None:
        return self._call("insert", key, value)

    def upsert(self, key: object, value: object = None) -> bool:
        return self._call("upsert", key, value)

    def delete(self, key: object) -> object:
        return self._call("delete", key)

    def search(self, key: object) -> object:
        return self._call("search", key)

    def contains(self, key: object) -> bool:
        return self._call("contains", key)

    def items(self) -> List[Pair]:
        return self._call("items")

    def range_query(self, low: object, high: object):
        return self._call("range_query", low, high)

    def check(self) -> None:
        return self._call("check")

    def __len__(self) -> int:
        return self._call("len")

    def __iter__(self):
        return iter(self._call("keys"))

    # -- accounting / serialisation / auditing -------------------------- #

    def io_stats(self):
        return self._call("io_stats")

    def snapshot_slots(self) -> Sequence[object]:
        return self._call("snapshot_slots")

    def audit_fingerprint(self) -> object:
        return self._call("audit_fingerprint")

    # -- optional capabilities ------------------------------------------ #

    def __getattr__(self, name: str):
        if name.startswith("_"):
            raise AttributeError(name)
        if name in self.__dict__.get("_remote_methods", frozenset()):
            def remote_call(*args: object) -> object:
                return self._call("__method__", name, args)
            remote_call.__name__ = name
            return remote_call
        raise AttributeError(
            "worker-hosted shard %r has no method %r"
            % (self.__dict__.get("registry_name"), name))


# --------------------------------------------------------------------------- #
# The engine
# --------------------------------------------------------------------------- #

class ProcessShardedDictionaryEngine(ShardedDictionaryEngine):
    """A sharded engine whose shards live in long-lived worker processes.

    Construction adopts every shard of the wrapped
    :class:`~repro.api.sharded.ShardedDictionary` into a worker process
    (pickling the structure over the command pipe) and replaces it with a
    forwarding proxy.  Bulk operations ship one batched command per shard
    per call and collect replies as workers finish; point operations stay
    routed (one round-trip).  ``max_workers`` caps the process pool — with
    fewer workers than shards, workers host several shards each and those
    shards' batches serialize on their worker.

    With ``sample_operations=True`` the bulk operations fall back to the
    sequential per-operation path (samples are an ordered, shared log), like
    the thread engine.  Workers are daemonic; call :meth:`close` (or use the
    engine as a context manager) for a clean shutdown.
    """

    def __init__(self, structure: ShardedDictionary, *,
                 name: Optional[str] = None,
                 sample_operations: bool = False,
                 max_workers: Optional[int] = None,
                 start_method: Optional[str] = None) -> None:
        if max_workers is not None and (not isinstance(max_workers, int)
                                        or isinstance(max_workers, bool)
                                        or max_workers < 1):
            raise ConfigurationError(
                "max_workers must be an integer >= 1 (or None for one "
                "worker per shard), got %r" % (max_workers,))
        super().__init__(structure, name=name,
                         sample_operations=sample_operations)
        self._max_workers = max_workers
        self._mp_context = multiprocessing.get_context(
            start_method or _default_start_method())
        self._workers: List[_ShardWorker] = []
        self._worker_by_shard: Dict[int, _ShardWorker] = {}
        self._closed = False
        self._adopt_local_shards()

    # ------------------------------------------------------------------ #
    # Worker pool management
    # ------------------------------------------------------------------ #

    @property
    def num_workers(self) -> int:
        return len(self._workers)

    def worker_pids(self) -> List[int]:
        """The worker process ids, in spawn order (testing/ops hook)."""
        return [worker.pid for worker in self._workers]

    def _pick_worker(self) -> _ShardWorker:
        """A live worker for a new shard: spawn until the cap, then pack."""
        cap = self._max_workers or len(self._structure.shards)
        live = [worker for worker in self._workers if worker.is_alive()]
        if len(live) < cap:
            worker = _ShardWorker(self._mp_context)
            self._workers.append(worker)
            return worker
        return min(live, key=lambda worker: len(worker.shard_ids))

    def _adopt_local_shards(self) -> None:
        """Move every locally held shard into a worker, proxying it here."""
        if self._closed:
            raise ConfigurationError(
                "this process engine is closed; build a new one")
        structure = self._structure
        shards = structure._shards
        for position, shard in enumerate(shards):
            if isinstance(shard, _ShardProxy):
                continue
            shard_id = structure.shard_ids[position]
            worker = self._pick_worker()
            descriptor = worker.host(shard_id, shard)
            self._worker_by_shard[shard_id] = worker
            shards[position] = _ShardProxy(worker, shard_id, descriptor)
        self._shard_engine_cache = []

    def close(self) -> None:
        """Shut every worker down cleanly.  Idempotent."""
        if self._closed:
            return
        self._closed = True
        for worker in self._workers:
            worker.shutdown()
        self._workers = []
        self._worker_by_shard = {}

    def __enter__(self) -> "ProcessShardedDictionaryEngine":
        return self

    def __exit__(self, exc_type, exc_value, traceback) -> None:
        self.close()

    def __del__(self) -> None:  # pragma: no cover - interpreter teardown
        try:
            self.close()
        except Exception:
            pass

    # ------------------------------------------------------------------ #
    # Crash handling
    # ------------------------------------------------------------------ #

    def dead_shard_positions(self) -> List[int]:
        """Shard positions whose worker process is no longer alive.

        Raises :class:`~repro.errors.ConfigurationError` once the engine is
        closed — a shut-down engine has no workers to inspect or restart.
        """
        if self._closed:
            raise ConfigurationError(
                "this process engine is closed; build a new one")
        structure = self._structure
        return [position for position, shard_id
                in enumerate(structure.shard_ids)
                if not self._worker_by_shard[shard_id].is_alive()]

    def restart_workers(self) -> List[int]:
        """Respawn dead workers with freshly built *empty* shards.

        A worker owns its shards' only copy, so a crash loses their data;
        this rebuilds each lost shard through the same registry wiring the
        engine was constructed with (drawing the next seeds of the
        construction seed stream) and hosts it in a new worker.  Returns
        the shard positions that were rebuilt — their keys are gone, the
        other shards are untouched.  Raises
        :class:`~repro.errors.ConfigurationError` for hand-assembled
        dictionaries with no recorded build context.
        """
        structure = self._structure
        lost = self.dead_shard_positions()
        if not lost:
            return []
        context = structure._build_context
        if context is None:
            raise ConfigurationError(
                "this sharded dictionary was assembled from pre-built "
                "shards; the engine cannot rebuild lost shards without a "
                "registry build context")
        from repro.api.registry import make_dictionary

        dead_workers = {self._worker_by_shard[structure.shard_ids[position]]
                        for position in lost}
        for position in lost:
            shard_id = structure.shard_ids[position]
            shard = make_dictionary(structure.inner_names[position],
                                    block_size=context["block_size"],
                                    cache_blocks=context["cache_blocks"],
                                    seed=context["rng"].getrandbits(64),
                                    backend=context["backend"],
                                    **context["inner_params"])
            worker = self._pick_worker()
            descriptor = worker.host(shard_id, shard)
            self._worker_by_shard[shard_id] = worker
            structure._shards[position] = _ShardProxy(worker, shard_id,
                                                      descriptor)
        for worker in dead_workers:
            worker.shutdown()
            if worker in self._workers:
                self._workers.remove(worker)
        self._shard_engine_cache = []
        return lost

    # ------------------------------------------------------------------ #
    # Command dispatch
    # ------------------------------------------------------------------ #

    def _worker_for_position(self, position: int) -> _ShardWorker:
        shard_id = self._structure.shard_ids[position]
        worker = self._worker_by_shard.get(shard_id)
        if worker is None:
            # The mapping only loses entries when the engine shut down; a
            # bare KeyError here would escape the library's error hierarchy.
            raise WorkerCrashError(
                "no worker hosts shard id %d%s"
                % (shard_id, " (the engine is closed)" if self._closed
                   else ""))
        return worker

    def _request(self, position: int, method: str, args: tuple = ()) -> object:
        shard_id = self._structure.shard_ids[position]
        return self._worker_for_position(position).request(shard_id, method,
                                                           args)

    def _drive_commands(self, commands: Sequence[
            Tuple[object, "_ShardWorker", int, str, tuple]]
            ) -> Tuple[Dict[object, object], Dict[object, BaseException]]:
        """Run ``(key, worker, engine id, method, args)`` commands; return
        ``(results, errors)`` keyed by ``key``.

        The shared dispatch loop behind :meth:`_scatter` and the replicated
        engine's primary-plus-replica fan-out: at most one command is
        outstanding per worker (a second send could deadlock against a
        worker blocked on a large reply); commands for the same worker run
        back to back; a dead worker fails its whole queue.  Callers decide
        which errors are fatal — the plain engine raises all of them, the
        replicated engine demotes replica failures to replica drops.
        """
        queues: Dict[_ShardWorker, Deque[Tuple[object, _ShardWorker, int,
                                               str, tuple]]] = {}
        for command in commands:
            queues.setdefault(command[1], deque()).append(command)
        results: Dict[object, object] = {}
        errors: Dict[object, BaseException] = {}

        def fail_worker(worker: _ShardWorker, key: object,
                        error: BaseException) -> None:
            errors[key] = error
            for queued in queues[worker]:
                errors[queued[0]] = error
            queues[worker].clear()

        def dispatch_next(worker: _ShardWorker) -> None:
            while queues[worker]:
                key, _worker, engine_id, method, args = \
                    queues[worker].popleft()
                try:
                    worker.send(engine_id, method, args)
                except WorkerCrashError as error:
                    fail_worker(worker, key, error)
                    continue
                outstanding[worker.connection] = (worker, key)
                return

        outstanding: Dict[object, Tuple[_ShardWorker, object]] = {}
        for worker in queues:
            dispatch_next(worker)
        while outstanding:
            for connection in wait(list(outstanding)):
                worker, key = outstanding.pop(connection)
                try:
                    status, payload = worker.receive()
                except WorkerCrashError as error:
                    fail_worker(worker, key, error)
                    continue
                if status == "err":
                    errors[key] = payload
                else:
                    results[key] = payload
                dispatch_next(worker)
        return results, errors

    def _scatter(self, commands: Sequence[Tuple[int, str, tuple]]
                 ) -> Dict[int, object]:
        """Run per-shard commands concurrently; results keyed by position.

        Worker-side exceptions — and
        :class:`~repro.errors.WorkerCrashError` for workers that die — are
        re-raised for the smallest shard position, matching which failure
        the sequential engine would surface first.
        """
        structure = self._structure
        results, errors = self._drive_commands(
            [(position, self._worker_for_position(position),
              structure.shard_ids[position], method, args)
             for position, method, args in commands])
        if errors:
            raise errors[min(errors)]
        return results

    # ------------------------------------------------------------------ #
    # Batched bulk operations (one round-trip per shard per call)
    # ------------------------------------------------------------------ #

    def insert_many(self, entries: Iterable[object]) -> int:
        """Insert keys or pairs: one ``insert_batch`` command per shard."""
        if self.sample_operations:
            return super().insert_many(entries)
        batches, count = self._grouped_entries(entries)
        self._scatter([(position, "insert_batch", (batch,))
                       for position, batch in enumerate(batches) if batch])
        return count

    def delete_many(self, keys: Iterable[object]) -> List[object]:
        """Delete per-shard batches in parallel; values in input order."""
        if self.sample_operations:
            return super().delete_many(keys)
        keys, batches = self._grouped_positions(keys)
        values: List[object] = [None] * len(keys)
        results = self._scatter(
            [(position, "delete_batch", ([key for _at, key in batch],))
             for position, batch in enumerate(batches) if batch])
        for position, batch in enumerate(batches):
            if batch:
                for (at, _key), value in zip(batch, results[position]):
                    values[at] = value
        return values

    def contains_many(self, keys: Iterable[object]) -> List[bool]:
        """Membership via parallel shard batches; input order preserved."""
        if self.sample_operations:
            return super().contains_many(keys)
        keys, batches = self._grouped_positions(keys)
        found: List[bool] = [False] * len(keys)
        results = self._scatter(
            [(position, "contains_batch", ([key for _at, key in batch],))
             for position, batch in enumerate(batches) if batch])
        for position, batch in enumerate(batches):
            if batch:
                for (at, _key), flag in zip(batch, results[position]):
                    found[at] = flag
        return found

    # ------------------------------------------------------------------ #
    # Shard-aware cost probes (measured and rolled back in the worker)
    # ------------------------------------------------------------------ #

    def search_io_cost(self, key: object) -> int:
        return self._request(self._structure.shard_of(key),
                             "search_io_cost", (key,))

    def range_io_cost_breakdown(self, low: object, high: object
                                ) -> Tuple[List[Pair], List[int]]:
        self._require_range_support()
        results = self._scatter([(position, "range_io_cost", (low, high))
                                 for position in range(self.num_shards)])
        merged = [results[position][0] for position in range(self.num_shards)]
        costs = [results[position][1] for position in range(self.num_shards)]
        pairs = list(heapq.merge(*merged, key=lambda pair: pair[0]))
        return pairs, costs

    # ------------------------------------------------------------------ #
    # Elastic resizing (migration runs through the proxies)
    # ------------------------------------------------------------------ #

    def add_shard(self, shard: Optional[HIDictionary] = None,
                  inner: Optional[str] = None) -> MigrationReport:
        """Grow by one shard; the new shard is adopted into a worker.

        The migration itself runs through the inherited canonical-order
        machinery (deletes and re-inserts flow through the shard proxies),
        so layouts match the sequential engine's resize byte for byte; the
        freshly built shard is hosted in a worker once the migration
        committed.
        """
        report = super().add_shard(shard=shard, inner=inner)
        self._adopt_local_shards()
        return report

    def remove_shard(self, position: int) -> MigrationReport:
        """Retire one shard and its worker hosting (after migration)."""
        if isinstance(position, int) and not isinstance(position, bool) \
                and 0 <= position < len(self._structure.shards):
            shard_id: Optional[int] = self._structure.shard_ids[position]
        else:
            shard_id = None  # let the structure raise its uniform error
        report = super().remove_shard(position)
        if shard_id is not None:
            worker = self._worker_by_shard.pop(shard_id)
            try:
                worker.drop(shard_id)
            except WorkerCrashError:
                pass
            if not worker.shard_ids:
                worker.shutdown()
                self._workers.remove(worker)
        return report
