"""Hash-partitioned sharding over the registry's dictionary backends.

This is the first scaling layer on top of the unified API: a
:class:`ShardedDictionary` hash-partitions the key space across ``N``
independently built registry backends (homogeneous or heterogeneous per
shard), and a :class:`ShardedDictionaryEngine` adds the orchestration a
sharded deployment needs on top of the plain
:class:`~repro.api.engine.DictionaryEngine`:

* **Deterministic routing** — :func:`shard_index` is a fixed mixing function
  of the key (no process-salted ``hash()``), so the shard a key lives on is a
  pure function of the key: reproducible across runs, machines, and restore.
  Because routing ignores operation order, a sharded dictionary built from
  history-independent shards is itself history independent.
* **Batched bulk operations** — :meth:`ShardedDictionaryEngine.insert_many`
  and :meth:`~ShardedDictionaryEngine.delete_many` group keys by shard before
  dispatch, so each shard sees one contiguous batch instead of an
  interleaving.
* **One merged stats view** — :meth:`ShardedDictionary.io_stats` aggregates
  every shard's counters; :meth:`ShardedDictionaryEngine.per_shard_io_stats`
  keeps the per-shard breakdown for imbalance analysis.
* **Shard-aware cost probes** — :meth:`ShardedDictionaryEngine.search_io_cost`
  routes to the single owning shard; ``range_io_cost`` fans out to every
  shard and merges the sorted per-shard results.
* **Per-shard snapshots** — :meth:`ShardedDictionaryEngine.snapshot_shards`
  writes one image per shard plus a JSON manifest, and
  :meth:`ShardedDictionaryEngine.restore_shards` rebuilds an engine from the
  manifest (routing determinism puts every key back on its original shard).

Construction goes through the registry like everything else::

    from repro.api import DictionaryEngine

    engine = DictionaryEngine.create("sharded", shards=4, inner="hi-skiplist",
                                     block_size=32, seed=7)
    engine.insert_many((key, key) for key in range(10_000))
    engine.per_shard_io_stats()
"""

from __future__ import annotations

import heapq
import json
import os
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

from repro._rng import RandomLike, make_rng
from repro.api.config import PARALLEL_MODES as PARALLEL_MODES  # re-export
from repro.api.config import EngineConfig
from repro.api.engine import DictionaryEngine
from repro.api.protocol import HIDictionary, Pair
from repro.api.routing import Router, hash_key, make_router
from repro.errors import ConfigurationError
from repro.memory.stats import IOStats

#: Default number of shards when the registry entry is built without one.
DEFAULT_SHARDS = 4
#: Default inner structure (history independent, so the default sharded
#: dictionary keeps the paper's property).
DEFAULT_INNER = "hi-skiplist"


def shard_index(key: object, num_shards: int) -> int:
    """The shard ``key`` modulo-routes to — a fixed, process-independent map.

    Kept as the module-level convenience the PR 2 consumers import; it is
    exactly what :class:`~repro.api.routing.ModuloRouter` computes (see
    :func:`~repro.api.routing.hash_key` for the mixing function and the
    equal-keys-route-identically contract).
    """
    if num_shards < 1:
        raise ConfigurationError("num_shards must be at least 1, got %r"
                                 % (num_shards,))
    return hash_key(key) % num_shards


@dataclass(frozen=True)
class MigrationReport:
    """What one :meth:`ShardedDictionary.add_shard` / ``remove_shard`` moved.

    ``moved_keys`` counts keys that changed shard (for a shard removal this
    includes everything the departing shard held); ``moved_per_source`` /
    ``received_per_target`` break the flow down by *new* shard position.
    Because the vectors are indexed by new position, a removed shard's
    outflow appears only in ``moved_keys`` and ``received_per_target`` —
    the departing shard has no new position, so on a ``remove_shard`` the
    per-source vector covers the survivors alone and
    ``sum(moved_per_source)`` can be less than ``moved_keys``.
    ``ideal_fraction`` is the consistent-hashing prediction — ``1/n_new``
    of the keys on a grow, ``1/n_old`` on a shrink — against which the
    resharding bench and the acceptance tests compare ``moved_fraction``.
    """

    old_shards: int
    new_shards: int
    router: str
    total_keys: int
    moved_keys: int
    moved_per_source: Tuple[int, ...] = field(default=())
    received_per_target: Tuple[int, ...] = field(default=())

    @property
    def moved_fraction(self) -> float:
        """Fraction of the key population that changed shard."""
        return self.moved_keys / self.total_keys if self.total_keys else 0.0

    @property
    def ideal_fraction(self) -> float:
        """What consistent hashing predicts the resize should move."""
        return 1.0 / max(self.old_shards, self.new_shards)


def _validated_shard_spec(extra: Mapping[str, object]
                          ) -> Tuple[int, List[str], Dict[str, object], Router]:
    """Validate the ``shards``/``inner``/``inner_params``/``router`` extras.

    Returns ``(num_shards, inner_names, inner_params, router)`` with
    ``inner_names`` expanded to one canonical registry name per shard.  Every
    invalid combination — zero shards, an unknown inner structure, a nested
    sharded inner, a per-shard list of the wrong length, an unknown router,
    non-positive vnodes — raises
    :class:`~repro.errors.ConfigurationError`, never ``KeyError`` or
    ``AttributeError``.
    """
    from repro.api.registry import resolve

    num_shards = extra.get("shards", DEFAULT_SHARDS)
    if not isinstance(num_shards, int) or isinstance(num_shards, bool) \
            or num_shards < 1:
        raise ConfigurationError(
            "shards must be an integer >= 1, got %r (an empty-shard "
            "configuration cannot store anything)" % (num_shards,))

    inner = extra.get("inner", DEFAULT_INNER)
    if isinstance(inner, str):
        inner_names = [inner] * num_shards
    elif isinstance(inner, (list, tuple)):
        inner_names = list(inner)
        if len(inner_names) != num_shards:
            raise ConfigurationError(
                "inner names one per shard: got %d name(s) for %d shard(s)"
                % (len(inner_names), num_shards))
    else:
        raise ConfigurationError(
            "inner must be a registry name or a per-shard sequence of names, "
            "got %r" % (inner,))
    resolved = []
    for name in inner_names:
        if not isinstance(name, str):
            raise ConfigurationError("inner shard name must be a string, "
                                     "got %r" % (name,))
        canonical = resolve(name)  # ConfigurationError on unknown structures
        if canonical == "sharded":
            raise ConfigurationError("sharded dictionaries cannot nest: "
                                     "inner structure must not be 'sharded'")
        resolved.append(canonical)

    inner_params = extra.get("inner_params", None)
    if inner_params is None:
        inner_params = {}
    elif isinstance(inner_params, Mapping):
        inner_params = dict(inner_params)
    else:
        raise ConfigurationError(
            "inner_params must be a mapping of structure-specific parameters "
            "applied to every shard, got %r" % (inner_params,))
    router = make_router(extra.get("router", "modulo"),
                         vnodes=extra.get("vnodes", None),
                         weights=extra.get("weights", None))
    return num_shards, resolved, inner_params, router


def _validated_shard_ids(shard_ids: Sequence[int],
                         num_shards: int) -> List[int]:
    """Distinct non-negative integer ids, one per shard — or a config error.

    Shared by the constructor and :meth:`ShardedDictionary.relabel_shards`
    so the id contract cannot drift between building and restoring.
    """
    validated = list(shard_ids)
    if len(validated) != num_shards \
            or len(set(validated)) != len(validated) \
            or not all(isinstance(shard_id, int)
                       and not isinstance(shard_id, bool)
                       and shard_id >= 0
                       for shard_id in validated):
        raise ConfigurationError(
            "shard_ids must be distinct non-negative integers, one per "
            "shard, got %r" % (shard_ids,))
    return validated


class ShardedDictionary(HIDictionary):
    """A key-addressed dictionary hash-partitioned across independent shards.

    Each shard is a complete :class:`~repro.api.protocol.HIDictionary` built
    through the registry; this class only routes, merges, and aggregates.
    Build one through ``make_dictionary("sharded", shards=..., inner=...)``
    or directly from pre-built shards (the shard list must be non-empty).
    """

    def __init__(self, shards: Sequence[HIDictionary],
                 inner_names: Optional[Sequence[str]] = None,
                 router: Optional[Router] = None,
                 shard_ids: Optional[Sequence[int]] = None) -> None:
        shards = list(shards)
        if not shards:
            raise ConfigurationError(
                "a sharded dictionary needs at least one shard")
        self._shards: List[HIDictionary] = shards
        self.inner_names: List[str] = list(
            inner_names if inner_names is not None
            else [getattr(shard, "registry_name", type(shard).__name__)
                  for shard in shards])
        self._router: Router = router if router is not None else make_router()
        if shard_ids is None:
            shard_ids = range(len(shards))
        # A tuple so the per-key router cache lookup needs no copy: routers
        # key their rings on tuple(shard_ids), and tuple() of a tuple is
        # the same object.  Resizes (rare) rebuild it wholesale.
        self._shard_ids: Tuple[int, ...] = tuple(
            _validated_shard_ids(shard_ids, len(shards)))
        self._next_shard_id: int = max(self._shard_ids) + 1
        # Populated by from_config so add_shard can build new shards with the
        # same registry wiring (and the next seed of the same stream) a
        # bigger fresh build would use; stays None for hand-assembled shards.
        self._build_context: Optional[Dict[str, object]] = None

    @classmethod
    def from_config(cls, config: "DictionaryConfig") -> "ShardedDictionary":
        """Registry factory: build shards from the validated extras.

        Each shard draws an independent seed from ``config.seed`` (fresh OS
        entropy per shard when the seed is ``None``, a reproducible per-shard
        stream otherwise) and is built through
        :func:`~repro.api.registry.make_dictionary`, so tracker wiring and
        per-structure validation are identical to an unsharded build.

        The seed stream outlives construction: :meth:`add_shard` draws the
        *next* seed from it, so a dictionary grown from ``n`` to ``n+1``
        shards gives its new shard exactly the seed a fresh ``n+1``-shard
        build would have given shard ``n`` — which is what lets the
        migration tests demand byte-identical layouts for strongly-HI
        inners.
        """
        from repro.api.registry import make_dictionary

        num_shards, inner_names, inner_params, router = _validated_shard_spec(
            config.extra)
        rng = make_rng(config.seed)
        # Per-shard seeds are drawn in shard order and *remembered*: the
        # replication layer rebuilds a crashed shard with its original seed,
        # which is what makes a recovered canonical (strongly-HI) layout
        # byte-identical to a never-crashed build of the same key set.
        shard_seeds = [rng.getrandbits(64) for _name in inner_names]
        shards = [
            make_dictionary(name,
                            block_size=config.block_size,
                            cache_blocks=config.cache_blocks,
                            seed=shard_seed,
                            backend=config.backend,
                            **inner_params)
            for name, shard_seed in zip(inner_names, shard_seeds)
        ]
        sharded = cls(shards, inner_names=inner_names, router=router)
        sharded._build_context = {
            "block_size": config.block_size,
            "cache_blocks": config.cache_blocks,
            "backend": config.backend,
            "inner_params": dict(inner_params),
            "seed": config.seed,
            "rng": rng,
            "shard_seeds": shard_seeds,
            "seeds_drawn": num_shards,
        }
        return sharded

    # ------------------------------------------------------------------ #
    # Routing
    # ------------------------------------------------------------------ #

    @property
    def shards(self) -> Tuple[HIDictionary, ...]:
        """The inner dictionaries, indexed by shard number."""
        return tuple(self._shards)

    @property
    def num_shards(self) -> int:
        return len(self._shards)

    @property
    def router(self) -> Router:
        """The routing strategy (modulo by default)."""
        return self._router

    @property
    def shard_ids(self) -> Tuple[int, ...]:
        """Stable per-shard identifiers the ring routers pin vnodes to."""
        return self._shard_ids

    def shard_of(self, key: object) -> int:
        """The shard index ``key`` routes to."""
        return self._router.route(key, self._shard_ids)

    def _shard_for(self, key: object) -> HIDictionary:
        return self._shards[self.shard_of(key)]

    # ------------------------------------------------------------------ #
    # Elastic resizing
    # ------------------------------------------------------------------ #

    def _migrate(self, new_ids: Sequence[int],
                 new_position_of: Dict[int, int],
                 leaving: Optional[int] = None) -> Tuple[int, List[int], List[int]]:
        """Move every key whose new routing disagrees with where it lives.

        ``new_position_of`` maps an old shard position to its position in the
        shard list *after* the resize (``leaving``, if given, is the old
        position being removed and must not appear in it).  Keys are
        re-inserted into their target shards in ascending key order — the
        canonical rebuild order — so weakly-HI inners receive the same
        insertion pattern a fresh build of their final key set would, and
        strongly-HI inners end in their (unique) canonical state.

        The plan (which keys move where, values included) is computed with
        pure reads before any shard is touched, and the mutation phase keeps
        an undo log: if an inner structure fails mid-migration, every delete
        is re-inserted and every insert deleted again, so the dictionary is
        back in its pre-resize state when the error propagates.

        Returns ``(moved, moved_per_source, received_per_target)`` with the
        per-shard vectors indexed by *new* position.
        """
        departing = self._shards[leaving] if leaving is not None else None
        moves: List[Tuple[object, object, HIDictionary, int]] = []
        moved_per_source = [0] * len(new_ids)
        for position, shard in enumerate(self._shards):
            if position == leaving:
                for key, value in shard.items():
                    moves.append((key, value, shard,
                                  self._router.route(key, new_ids)))
                continue
            new_position = new_position_of[position]
            for key, value in shard.items():
                target = self._router.route(key, new_ids)
                if target != new_position:
                    moves.append((key, value, shard, target))
                    moved_per_source[new_position] += 1
        received_per_target = [0] * len(new_ids)
        new_shards = [shard for position, shard in enumerate(self._shards)
                      if position != leaving]
        # Canonical order: deletions drain sources smallest-key first, then
        # insertions refill targets smallest-key first — both passes are pure
        # functions of the key sets involved, never of arrival order.  (The
        # departing shard is dropped wholesale, so its keys are not deleted
        # one by one.)
        moves.sort(key=lambda move: move[0])
        deleted: List[Tuple[HIDictionary, object, object]] = []
        inserted: List[Tuple[HIDictionary, object]] = []
        try:
            for key, value, source, _target in moves:
                if source is not departing:
                    source.delete(key)
                    deleted.append((source, key, value))
            for key, value, _source, target in moves:
                new_shards[target].insert(key, value)
                inserted.append((new_shards[target], key))
                received_per_target[target] += 1
        except Exception:
            for shard, key in reversed(inserted):
                shard.delete(key)
            for shard, key, value in reversed(deleted):
                shard.insert(key, value)
            raise
        return len(moves), moved_per_source, received_per_target

    def add_shard(self, shard: Optional[HIDictionary] = None,
                  inner: Optional[str] = None) -> MigrationReport:
        """Grow by one shard, migrating only the keys that re-route to it.

        With no arguments the new shard is built exactly like the existing
        ones (same registry wiring, the next seed of the construction seed
        stream); pass ``inner`` to grow with a different registry structure,
        or a pre-built ``shard`` when the dictionary was assembled by hand.
        Under consistent hashing the migration touches ``≈ n/(shards+1)``
        keys, all flowing to the new shard; under modulo routing nearly every
        key moves (which is why the modulo router cannot scale elastically).
        """
        if shard is not None and inner is not None:
            raise ConfigurationError(
                "pass either a pre-built shard or an inner name, not both")
        rng_state = None
        new_seed: Optional[int] = None
        if shard is None:
            context = self._build_context
            if context is None:
                raise ConfigurationError(
                    "this sharded dictionary was assembled from pre-built "
                    "shards; add_shard needs an explicit shard object")
            from repro.api.registry import make_dictionary, resolve

            if inner is None:
                inner_name = self.inner_names[-1]
            else:
                inner_name = resolve(inner)
                if inner_name == "sharded":
                    raise ConfigurationError(
                        "sharded dictionaries cannot nest: inner structure "
                        "must not be 'sharded'")
            rng_state = context["rng"].getstate()
            try:
                new_seed = context["rng"].getrandbits(64)
                shard = make_dictionary(inner_name,
                                        block_size=context["block_size"],
                                        cache_blocks=context["cache_blocks"],
                                        seed=new_seed,
                                        backend=context["backend"],
                                        **context["inner_params"])
            except Exception:
                # The seed draw must not outlive a failed build (e.g. stored
                # inner_params invalid for a different inner): a later grow
                # still has to match a fresh build seed for seed.
                context["rng"].setstate(rng_state)
                raise
        else:
            inner_name = getattr(shard, "registry_name",
                                 type(shard).__name__)
        if len(shard) != 0:
            raise ConfigurationError(
                "a shard added during rebalancing must start empty; "
                "got one holding %d key(s)" % (len(shard),))
        old_shards = len(self._shards)
        old_ids = self._shard_ids
        new_ids = old_ids + (self._next_shard_id,)
        new_position_of = {position: position
                           for position in range(old_shards + 1)}
        total = len(self)
        # Stage the new shard before migrating so routing targets (including
        # the new last position) resolve against the final shard list.
        self._shards.append(shard)
        self.inner_names.append(inner_name)
        self._shard_ids = new_ids
        self._next_shard_id += 1
        context = self._build_context
        if context is not None:
            # Registry-built growth extends the remembered seed list (the
            # replication layer rebuilds crashed shards from it); a shard
            # handed in pre-built has no known seed.
            context["shard_seeds"].append(new_seed)
            if new_seed is not None:
                context["seeds_drawn"] += 1
        try:
            moved, per_source, per_target = self._migrate(
                new_ids, new_position_of)
        except Exception:
            # Restore *everything* a fresh-build comparison can see: the
            # shard list, the id counter, and (for registry-built shards)
            # the construction seed stream — a later successful grow must
            # be indistinguishable from one with no failed attempt before.
            self._shards.pop()
            self.inner_names.pop()
            self._shard_ids = old_ids
            self._next_shard_id -= 1
            if context is not None:
                context["shard_seeds"].pop()
                if new_seed is not None:
                    context["seeds_drawn"] -= 1
            if rng_state is not None:
                self._build_context["rng"].setstate(rng_state)
            raise
        return MigrationReport(
            old_shards=old_shards, new_shards=old_shards + 1,
            router=self._router.name, total_keys=total, moved_keys=moved,
            moved_per_source=tuple(per_source),
            received_per_target=tuple(per_target))

    def remove_shard(self, position: int) -> MigrationReport:
        """Shrink by one shard, redistributing (at least) its keys.

        ``position`` is the shard index to retire.  Under consistent hashing
        only the departing shard's keys move (its vnodes vanish, everyone
        else's arcs are untouched); under modulo routing the whole key
        population reshuffles.  The surviving shards keep their stable ids,
        so a later :meth:`add_shard` does not disturb them either.
        """
        num_shards = len(self._shards)
        if num_shards <= 1:
            raise ConfigurationError(
                "cannot remove the last shard of a sharded dictionary")
        if not isinstance(position, int) or isinstance(position, bool) \
                or not 0 <= position < num_shards:
            raise ConfigurationError(
                "shard position must be an integer in [0, %d), got %r"
                % (num_shards, position))
        new_ids = tuple(shard_id for index, shard_id
                        in enumerate(self._shard_ids) if index != position)
        new_position_of = {
            old: old - (1 if old > position else 0)
            for old in range(num_shards) if old != position
        }
        total = len(self)
        moved, per_source, per_target = self._migrate(
            new_ids, new_position_of, leaving=position)
        self._shards.pop(position)
        self.inner_names.pop(position)
        self._shard_ids = new_ids
        if self._build_context is not None:
            self._build_context["shard_seeds"].pop(position)
        return MigrationReport(
            old_shards=num_shards, new_shards=num_shards - 1,
            router=self._router.name, total_keys=total, moved_keys=moved,
            moved_per_source=tuple(per_source),
            received_per_target=tuple(per_target))

    def relabel_shards(self, shard_ids: Sequence[int]) -> None:
        """Overwrite the stable shard ids (snapshot-restore hook).

        A restore must route exactly like the engine its images came from;
        when that engine had been resized its ids are no longer ``0..n-1``,
        so the manifest records them and the restore re-applies them here —
        always *before* any key is inserted.  Relabeling a populated
        dictionary would silently strand every live key on a shard its new
        routing no longer points at, so it is rejected.
        """
        if len(self) != 0:
            raise ConfigurationError(
                "cannot relabel the shards of a populated dictionary "
                "(%d keys would be stranded on wrongly-routed shards); "
                "relabel before inserting, or resize with "
                "add_shard/remove_shard" % (len(self),))
        self._shard_ids = tuple(_validated_shard_ids(shard_ids,
                                                     len(self._shards)))
        self._next_shard_id = max(self._shard_ids) + 1

    # ------------------------------------------------------------------ #
    # Dictionary operations (routed)
    # ------------------------------------------------------------------ #

    def insert(self, key: object, value: object = None) -> None:
        self._shard_for(key).insert(key, value)

    def upsert(self, key: object, value: object = None) -> bool:
        return self._shard_for(key).upsert(key, value)

    def delete(self, key: object) -> object:
        return self._shard_for(key).delete(key)

    def search(self, key: object) -> object:
        return self._shard_for(key).search(key)

    def contains(self, key: object) -> bool:
        return self._shard_for(key).contains(key)

    def range_query(self, low: object, high: object) -> List[Pair]:
        """Fan out to every shard and merge the sorted per-shard results."""
        per_shard = [shard.range_items(low, high) for shard in self._shards]
        return list(heapq.merge(*per_shard, key=lambda pair: pair[0]))

    # ------------------------------------------------------------------ #
    # Container protocol / merged views
    # ------------------------------------------------------------------ #

    def __len__(self) -> int:
        return sum(len(shard) for shard in self._shards)

    def __iter__(self):
        return iter(heapq.merge(*[list(shard) for shard in self._shards]))

    def items(self) -> List[Pair]:
        return list(heapq.merge(*[shard.items() for shard in self._shards],
                                key=lambda pair: pair[0]))

    def shard_sizes(self) -> List[int]:
        """Number of keys on each shard (the imbalance view)."""
        return [len(shard) for shard in self._shards]

    # ------------------------------------------------------------------ #
    # Accounting
    # ------------------------------------------------------------------ #

    def io_stats(self) -> IOStats:
        """Aggregate counters across every shard (one merged stats view)."""
        merged = IOStats()
        for stats in self.per_shard_io_stats():
            merged.reads += stats.reads
            merged.writes += stats.writes
            merged.cache_hits += stats.cache_hits
            merged.element_moves += stats.element_moves
            merged.operations += stats.operations
            for name, amount in stats.counters.items():
                merged.counters[name] = merged.counters.get(name, 0) + amount
        return merged

    def per_shard_io_stats(self) -> List[IOStats]:
        """Each shard's merged :meth:`~HIDictionary.io_stats` view, in order."""
        return [shard.io_stats() for shard in self._shards]

    def stats_objects(self) -> List[IOStats]:
        """The live counter objects behind every shard (engine probe hook).

        :class:`~repro.api.engine.DictionaryEngine` snapshots and restores
        these around its cold-cache cost probes, so sharded measurements are
        rolled back exactly like unsharded ones.
        """
        objects: List[IOStats] = []
        for shard in self._shards:
            own = getattr(shard, "stats", None)
            if own is not None:
                objects.append(own)
            tracker = getattr(shard, "io_tracker", None)
            if tracker is not None:
                objects.append(tracker.stats)
        return objects

    def clear_caches(self) -> None:
        """Clear every shard's simulated cache (engine probe hook)."""
        for shard in self._shards:
            tracker = getattr(shard, "io_tracker", None)
            if tracker is not None and tracker.cache is not None:
                tracker.cache.clear()

    # ------------------------------------------------------------------ #
    # Serialisation / auditing
    # ------------------------------------------------------------------ #

    def snapshot_slots(self) -> Sequence[object]:
        """Per-shard slot arrays concatenated in shard order.

        Shard boundaries are a deterministic function of the key set (routing
        is content-only), so the concatenation preserves whatever layout
        guarantees the inner structures give.
        """
        slots: List[object] = []
        for shard in self._shards:
            slots.extend(shard.snapshot_slots())
        return slots

    def audit_fingerprint(self) -> object:
        """Per-shard fingerprints, in shard order.

        Shard membership depends only on the key set, so two equivalent
        histories split into per-shard histories that are equivalent shard by
        shard; the tuple of shard fingerprints is the right observable for
        the weak-history-independence audit.
        """
        return tuple(shard.audit_fingerprint() for shard in self._shards)

    # ------------------------------------------------------------------ #
    # Validation
    # ------------------------------------------------------------------ #

    def check(self) -> None:
        from repro.errors import InvariantViolation

        for index, shard in enumerate(self._shards):
            shard.check()
            for key in shard:
                if self.shard_of(key) != index:
                    raise InvariantViolation(
                        "key %r lives on shard %d but routes to shard %d"
                        % (key, index, self.shard_of(key)))


class ShardedDictionaryEngine(DictionaryEngine):
    """Engine facade for a :class:`ShardedDictionary`: batched, shard-aware.

    Everything a plain :class:`~repro.api.engine.DictionaryEngine` does works
    unchanged (point operations route through the sharded structure, the
    uniform single-file ``snapshot`` persists the concatenated slot arrays);
    on top of that the bulk operations group keys by shard before dispatch,
    cost probes are shard-aware, and snapshots can be taken one file per
    shard with a manifest for restore.
    """

    #: File name of the manifest written next to the per-shard images.
    MANIFEST_NAME = "manifest.json"

    #: Manifest format version this build writes.  Version 2 added the
    #: ``version`` field itself plus per-shard image checksums; manifests
    #: without a version (implicitly 1) still restore, newer versions are
    #: rejected instead of being half-understood.
    MANIFEST_VERSION = 2

    def __init__(self, structure: ShardedDictionary, *,
                 name: Optional[str] = None,
                 sample_operations: bool = False) -> None:
        if not isinstance(structure, ShardedDictionary):
            raise ConfigurationError(
                "ShardedDictionaryEngine requires a ShardedDictionary; build "
                "one with make_dictionary('sharded', shards=..., inner=...) "
                "or wrap %r in a plain DictionaryEngine instead"
                % (type(structure).__name__,))
        super().__init__(structure, name=name,
                         sample_operations=sample_operations)
        self._shard_engine_cache: List[DictionaryEngine] = []

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #

    def _engines(self) -> List[DictionaryEngine]:
        """The per-shard engine wrappers, resynced with the structure.

        The wrapped :class:`ShardedDictionary` can be resized behind the
        engine's back — ``engine.structure.add_shard()`` is public API (and
        what the elastic workload docs suggest) — so the wrappers are
        derived from the live shard list on every access instead of being
        cached at construction; a stale list would mis-size bulk batches
        and index past the end on routed probes.
        """
        structure = self._structure
        cache = self._shard_engine_cache
        if len(cache) != structure.num_shards or any(
                engine.structure is not shard
                for engine, shard in zip(cache, structure.shards)):
            self._shard_engine_cache = cache = [
                self._shard_engine_for(position)
                for position in range(structure.num_shards)]
        return cache

    @property
    def shard_engines(self) -> Tuple[DictionaryEngine, ...]:
        """One plain engine per shard (for per-shard probes and snapshots)."""
        return tuple(self._engines())

    @property
    def num_shards(self) -> int:
        return self._structure.num_shards

    @property
    def router(self) -> Router:
        return self._structure.router

    def shard_sizes(self) -> List[int]:
        return self._structure.shard_sizes()

    def per_shard_io_stats(self) -> List[IOStats]:
        """Per-shard counters; their sum is :meth:`io_stats`."""
        return self._structure.per_shard_io_stats()

    # ------------------------------------------------------------------ #
    # Elastic resizing
    # ------------------------------------------------------------------ #

    def _shard_engine_for(self, position: int) -> DictionaryEngine:
        shard = self._structure.shards[position]
        inner = self._structure.inner_names[position]
        return DictionaryEngine(shard, name="%s[%d]" % (inner, position))

    def add_shard(self, shard: Optional[HIDictionary] = None,
                  inner: Optional[str] = None) -> MigrationReport:
        """Grow by one shard (see :meth:`ShardedDictionary.add_shard`)."""
        return self._structure.add_shard(shard=shard, inner=inner)

    def remove_shard(self, position: int) -> MigrationReport:
        """Retire one shard (see :meth:`ShardedDictionary.remove_shard`)."""
        return self._structure.remove_shard(position)

    # ------------------------------------------------------------------ #
    # Batched bulk operations
    # ------------------------------------------------------------------ #

    def _grouped_entries(self, entries: Iterable[object]
                         ) -> Tuple[List[List[Pair]], int]:
        """Shard-grouped ``(key, value)`` batches plus the total entry count.

        The single source of routing truth for both the sequential and the
        parallel bulk paths: relative input order is preserved within each
        per-shard batch.
        """
        batches: List[List[Pair]] = [[] for _ in self._engines()]
        count = 0
        for entry in entries:
            key, value = self._as_pair(entry)
            batches[self._structure.shard_of(key)].append((key, value))
            count += 1
        return batches, count

    def _grouped_positions(self, keys: Iterable[object]
                           ) -> Tuple[List[object],
                                      List[List[Tuple[int, object]]]]:
        """The key list plus shard-grouped ``(input position, key)`` batches."""
        keys = list(keys)
        batches: List[List[Tuple[int, object]]] = \
            [[] for _ in self._engines()]
        for position, key in enumerate(keys):
            batches[self._structure.shard_of(key)].append((position, key))
        return keys, batches

    def insert_many(self, entries: Iterable[object]) -> int:
        """Insert keys or pairs, grouped by shard before dispatch.

        Each shard receives its keys as one contiguous batch (relative input
        order preserved within the batch), which is what gives sharding its
        locality win over interleaved routing.  Returns the number inserted.
        When per-operation sampling is off (the default), each batch runs as
        a tight loop over the shard's bound ``insert`` — no per-key
        context-manager or stats traffic on the hot path.
        """
        batches, count = self._grouped_entries(entries)
        with self._bulk_op("insert_many"):
            for engine, batch in zip(self._engines(), batches):
                if not self.sample_operations:
                    insert = engine.structure.insert
                    for key, value in batch:
                        insert(key, value)
                    continue
                for key, value in batch:
                    with self._operation("insert"):
                        engine.structure.insert(key, value)
        self.metrics.inc("engine.keys.insert_many", count)
        return count

    def delete_many(self, keys: Iterable[object]) -> List[object]:
        """Delete keys grouped by shard; values return in the input order."""
        keys, batches = self._grouped_positions(keys)
        values: List[object] = [None] * len(keys)
        with self._bulk_op("delete_many"):
            for engine, batch in zip(self._engines(), batches):
                if not self.sample_operations:
                    delete = engine.structure.delete
                    for position, key in batch:
                        values[position] = delete(key)
                    continue
                for position, key in batch:
                    with self._operation("delete"):
                        values[position] = engine.structure.delete(key)
        self.metrics.inc("engine.keys.delete_many", len(values))
        return values

    def contains_many(self, keys: Iterable[object]) -> List[bool]:
        """Membership for every key, grouped by shard; input order preserved."""
        keys, batches = self._grouped_positions(keys)
        found: List[bool] = [False] * len(keys)
        with self._bulk_op("contains_many"):
            for engine, batch in zip(self._engines(), batches):
                if not self.sample_operations:
                    contains = engine.structure.contains
                    for position, key in batch:
                        found[position] = contains(key)
                    continue
                for position, key in batch:
                    with self._operation("contains"):
                        found[position] = engine.structure.contains(key)
        self.metrics.inc("engine.keys.contains_many", len(found))
        return found

    # ------------------------------------------------------------------ #
    # Shard-aware cost probes
    # ------------------------------------------------------------------ #

    def search_io_cost(self, key: object) -> int:
        """Cold-cache search cost on the single shard that owns ``key``."""
        return self._engines()[self._structure.shard_of(key)] \
            .search_io_cost(key)

    def _require_range_support(self) -> None:
        """Fail fast — naming the shard — when an inner cannot range-query.

        The fan-out must never silently skip a shard (the merged result
        would be quietly missing that shard's keys), and a failure halfway
        through the loop would leave the caller with no idea which inner is
        at fault; so every shard is checked before any is probed.
        """
        for position, engine in enumerate(self._engines()):
            if not callable(getattr(engine.structure, "range_query", None)):
                raise ConfigurationError(
                    "shard %d (%s) does not implement range_query(); the "
                    "sharded range fan-out cannot skip a shard without "
                    "returning incomplete results"
                    % (position, self._structure.inner_names[position]))

    def range_io_cost_breakdown(self, low: object, high: object
                                ) -> Tuple[List[Pair], List[int]]:
        """Fan the range out to every shard; merge results, keep the costs.

        Returns the merged sorted pairs plus one cold-cache cost per shard,
        in shard order — the imbalance view of a fan-out query.  Every shard
        must support range queries; a shard that does not raises
        :class:`~repro.errors.ConfigurationError` up front (a skipped shard
        would silently drop its part of the interval).  Like the base probe,
        each per-shard measurement is rolled back afterwards.
        """
        self._require_range_support()
        merged: List[List[Pair]] = []
        costs: List[int] = []
        for engine in self._engines():
            pairs, cost = engine.range_io_cost(low, high)
            merged.append(pairs)
            costs.append(cost)
        pairs = list(heapq.merge(*merged, key=lambda pair: pair[0]))
        return pairs, costs

    def range_io_cost(self, low: object, high: object) -> Tuple[List[Pair], int]:
        """Fan the range out to every shard; merge results, sum the costs.

        A range query cannot be routed — every shard may own keys inside the
        interval — so its cost is inherently the sum over shards; use
        :meth:`range_io_cost_breakdown` for the per-shard cost vector.
        """
        pairs, costs = self.range_io_cost_breakdown(low, high)
        return pairs, sum(costs)

    # ------------------------------------------------------------------ #
    # Per-shard snapshots
    # ------------------------------------------------------------------ #

    def snapshot_shards(self, directory: str, *,
                        page_size: int = 4096,
                        payload_size: int = 64,
                        shuffle_pages: bool = False,
                        seed: RandomLike = None) -> Dict[str, object]:
        """Write one image per shard into ``directory`` plus a JSON manifest.

        Returns the manifest (also written to :attr:`MANIFEST_NAME` inside
        the directory): shard count, inner structure names, and for each
        shard the image file name and the snapshot metadata needed to decode
        it.  :meth:`restore_shards` consumes exactly this layout.
        """
        from repro.storage.snapshot import file_checksum

        os.makedirs(directory, exist_ok=True)
        shards = []
        for index, engine in enumerate(self._engines()):
            file_name = "shard-%04d.img" % index
            path = os.path.join(directory, file_name)
            _paged, metadata = engine.snapshot(
                path, page_size=page_size, payload_size=payload_size,
                shuffle_pages=shuffle_pages, seed=seed)
            shards.append({
                "file": file_name,
                "checksum": file_checksum(path),
                "kind": metadata.kind,
                "num_slots": metadata.num_slots,
                "num_pages": metadata.num_pages,
                "page_size": metadata.page_size,
                "payload_size": metadata.payload_size,
                "page_order": list(metadata.page_order),
            })
        manifest = {
            "version": self.MANIFEST_VERSION,
            "structure": self.name,
            "num_shards": self.num_shards,
            "inner": list(self._structure.inner_names),
            "router": self._structure.router.spec(),
            "shard_ids": list(self._structure.shard_ids),
            "shards": shards,
        }
        # Registry-built dictionaries also persist their construction
        # parameters, so a restore rebuilds shards with the same block size
        # / cache / structure extras instead of silently drifting to the
        # defaults (hand-assembled shard lists have no recorded build).
        context = self._structure._build_context
        if context is not None:
            manifest["build"] = {
                "block_size": context["block_size"],
                "cache_blocks": context["cache_blocks"],
                "backend": context["backend"],
                "inner_params": dict(context["inner_params"]),
            }
            # The construction seed makes restores reproducible run-to-run;
            # a live random.Random (RandomLike) is not serialisable, so only
            # int / None seeds are recorded.
            if context["seed"] is None or (isinstance(context["seed"], int)
                                           and not isinstance(context["seed"],
                                                              bool)):
                manifest["build"]["seed"] = context["seed"]
        with open(os.path.join(directory, self.MANIFEST_NAME), "w",
                  encoding="utf-8") as handle:
            json.dump(manifest, handle, indent=2)
        return manifest

    @classmethod
    def restore_shards(cls, directory: str, *,
                       block_size: Optional[int] = None,
                       cache_blocks: Optional[int] = None,
                       seed: RandomLike = None,
                       backend: Optional[str] = None,
                       inner_params: Optional[Mapping[str, object]] = None
                       ) -> "ShardedDictionaryEngine":
        """Rebuild a sharded engine from a :meth:`snapshot_shards` directory.

        Shard count, inner structure names, the router (with its vnodes),
        the stable shard ids *and the construction parameters* (block size,
        cache, backend, structure extras, seed — when the snapshotted
        engine was registry-built) all come from the manifest, so by
        default the restored engine is configured like the one the images
        were written from and restores are reproducible run to run; the
        keyword arguments override manifest values, and fall back to the
        registry defaults for manifests that predate the ``build`` record.
        (The physical layouts of structures that consume randomness per
        operation still reflect the restore's insertion order, not the
        original operation history — that is the history-independence
        guarantee at work, not a configuration drift.)  The recovered records are re-inserted, and
        routing determinism guarantees every key lands back on the shard
        its image came from — including engines that had been elastically
        resized before the snapshot.  Slots that are bare keys (structures
        whose snapshot persists the physical slot array rather than pairs)
        restore with a ``None`` value, matching what the single-file
        snapshot path preserves.
        """
        from repro.api.registry import make_dictionary
        from repro.storage.pager import PagedFile
        from repro.storage.snapshot import SnapshotMetadata, load_records

        manifest_path = os.path.join(directory, cls.MANIFEST_NAME)
        try:
            with open(manifest_path, encoding="utf-8") as handle:
                manifest = json.load(handle)
        except (OSError, ValueError) as error:
            raise ConfigurationError(
                "cannot read sharded snapshot manifest %r: %s"
                % (manifest_path, error)) from error
        version = manifest.get("version", 1)
        if not isinstance(version, int) or isinstance(version, bool) \
                or version < 1:
            raise ConfigurationError(
                "sharded snapshot manifest %r has a malformed version %r"
                % (manifest_path, version))
        if version > cls.MANIFEST_VERSION:
            raise ConfigurationError(
                "sharded snapshot manifest %r has format version %d; this "
                "build reads up to %d — refusing to guess at fields it "
                "cannot understand" % (manifest_path, version,
                                       cls.MANIFEST_VERSION))
        num_shards = manifest.get("num_shards")
        inner = manifest.get("inner")
        shard_entries = manifest.get("shards")
        if not isinstance(num_shards, int) or not isinstance(inner, list) \
                or not isinstance(shard_entries, list) \
                or len(shard_entries) != num_shards:
            raise ConfigurationError(
                "sharded snapshot manifest %r is malformed" % (manifest_path,))
        # Manifests from before routers existed restore with the routing
        # they were written under: the modulo default over ids 0..n-1.
        router_spec = manifest.get("router", {"name": "modulo"})
        shard_ids = manifest.get("shard_ids")
        try:
            router = make_router(router_spec)
        except ConfigurationError as error:
            raise ConfigurationError(
                "sharded snapshot manifest %r has a malformed router spec: "
                "%s" % (manifest_path, error)) from error

        build = manifest.get("build", {})
        if not isinstance(build, dict):
            raise ConfigurationError(
                "sharded snapshot manifest %r has a malformed build record"
                % (manifest_path,))
        if block_size is None:
            block_size = build.get("block_size", 64)
        if cache_blocks is None:
            cache_blocks = build.get("cache_blocks", 0)
        if backend is None:
            backend = build.get("backend", "auto")
        if inner_params is None:
            inner_params = build.get("inner_params", {})
        if seed is None:
            seed = build.get("seed")

        structure = make_dictionary("sharded", block_size=block_size,
                                    cache_blocks=cache_blocks, seed=seed,
                                    backend=backend, shards=num_shards,
                                    inner=inner, router=router,
                                    inner_params=dict(inner_params))
        if shard_ids is not None:
            try:
                structure.relabel_shards(shard_ids)
            except (ConfigurationError, TypeError) as error:
                raise ConfigurationError(
                    "sharded snapshot manifest %r has malformed shard ids: "
                    "%s" % (manifest_path, error)) from error
        engine = cls(structure)
        for index, entry in enumerate(shard_entries):
            try:
                metadata = SnapshotMetadata(
                    kind=entry["kind"], num_slots=entry["num_slots"],
                    num_pages=entry["num_pages"],
                    page_size=entry["page_size"],
                    payload_size=entry["payload_size"],
                    page_order=tuple(entry["page_order"]))
                file_name = entry["file"]
            except (KeyError, TypeError) as error:
                raise ConfigurationError(
                    "sharded snapshot manifest %r shard entry %d is "
                    "malformed: %s" % (manifest_path, index, error)) from error
            image_path = os.path.join(directory, file_name)
            recorded = entry.get("checksum")
            if recorded is not None:
                from repro.storage.snapshot import file_checksum
                actual = file_checksum(image_path)
                if actual != recorded:
                    raise ConfigurationError(
                        "shard image %r is corrupt or truncated: checksum "
                        "%s does not match the manifest's %s"
                        % (image_path, actual, recorded))
            paged = PagedFile(page_size=metadata.page_size, path=image_path)
            for slot in load_records(paged, metadata):
                if slot is None:
                    continue
                if isinstance(slot, tuple) and len(slot) == 2:
                    key, value = slot
                else:
                    key, value = slot, None
                engine.shard_engines[index].structure.insert(key, value)
        return engine


class ParallelShardedDictionaryEngine(ShardedDictionaryEngine):
    """A sharded engine whose fan-outs run on a thread pool.

    Each shard owns independent structures and block devices and the
    batched bulk operations already group work by shard, so per-shard
    batches are embarrassingly parallel: this engine dispatches them over a
    :class:`~concurrent.futures.ThreadPoolExecutor` and merges in shard
    order, which makes every result — returned values, merged iteration
    order, per-shard layouts — byte-identical to the sequential
    :class:`ShardedDictionaryEngine` over the same inputs.

    Two sequential carve-outs keep the semantics exact:

    * with ``sample_operations=True`` the bulk operations fall back to the
      sequential path (per-operation samples are an ordered, shared log);
    * point operations stay routed and sequential — there is nothing to fan
      out.

    ``max_workers`` caps the pool (default: one worker per dispatched shard
    batch).  A fresh pool is spun up per bulk call — dispatch is batch-level,
    so the spawn cost amortises over each shard's whole batch, and no idle
    worker threads outlive the call or a resize.

    The byte-identity guarantee covers bulk calls that *succeed*.  When a
    batch raises (say a :class:`~repro.errors.DuplicateKey` on one shard)
    the same exception surfaces from both engines, but the sequential
    engine stops at the failing shard while the parallel engine lets the
    other shards' already-dispatched batches run to completion — post-error
    shard states may differ between the two.
    """

    def __init__(self, structure: ShardedDictionary, *,
                 name: Optional[str] = None,
                 sample_operations: bool = False,
                 max_workers: Optional[int] = None) -> None:
        if max_workers is not None and (not isinstance(max_workers, int)
                                        or isinstance(max_workers, bool)
                                        or max_workers < 1):
            raise ConfigurationError(
                "max_workers must be an integer >= 1 (or None for one "
                "worker per shard), got %r" % (max_workers,))
        super().__init__(structure, name=name,
                         sample_operations=sample_operations)
        self._max_workers = max_workers

    def _fan_out(self, tasks: Sequence) -> List[object]:
        """Run thunks concurrently; return their results in input order.

        Exceptions re-raise in input (shard) order, matching which failure
        the sequential engine would have surfaced first.
        """
        if not tasks:
            return []
        if len(tasks) == 1:
            return [tasks[0]()]
        workers = self._max_workers or len(tasks)
        with ThreadPoolExecutor(max_workers=workers) as pool:
            futures = [pool.submit(task) for task in tasks]
            return [future.result() for future in futures]

    def insert_many(self, entries: Iterable[object]) -> int:
        """Insert keys or pairs: shard-grouped batches, one thread each."""
        if self.sample_operations:
            return super().insert_many(entries)
        batches, count = self._grouped_entries(entries)

        def inserter(structure: HIDictionary, batch: List[Pair]):
            def run() -> None:
                for key, value in batch:
                    structure.insert(key, value)
            return run

        with self._bulk_op("insert_many"):
            self._fan_out([inserter(engine.structure, batch)
                           for engine, batch in zip(self._engines(), batches)
                           if batch])
        self.metrics.inc("engine.keys.insert_many", count)
        return count

    def delete_many(self, keys: Iterable[object]) -> List[object]:
        """Delete shard-grouped batches in parallel; values in input order."""
        if self.sample_operations:
            return super().delete_many(keys)
        keys, batches = self._grouped_positions(keys)
        values: List[object] = [None] * len(keys)

        def deleter(structure: HIDictionary,
                    batch: List[Tuple[int, object]]):
            def run() -> None:
                # Disjoint positions per shard: no two workers write the
                # same slot of the shared result list.
                for position, key in batch:
                    values[position] = structure.delete(key)
            return run

        with self._bulk_op("delete_many"):
            self._fan_out([deleter(engine.structure, batch)
                           for engine, batch in zip(self._engines(), batches)
                           if batch])
        self.metrics.inc("engine.keys.delete_many", len(values))
        return values

    def contains_many(self, keys: Iterable[object]) -> List[bool]:
        """Membership via parallel shard batches; input order preserved."""
        if self.sample_operations:
            return super().contains_many(keys)
        keys, batches = self._grouped_positions(keys)
        found: List[bool] = [False] * len(keys)

        def prober(structure: HIDictionary,
                   batch: List[Tuple[int, object]]):
            def run() -> None:
                for position, key in batch:
                    found[position] = structure.contains(key)
            return run

        with self._bulk_op("contains_many"):
            self._fan_out([prober(engine.structure, batch)
                           for engine, batch in zip(self._engines(), batches)
                           if batch])
        self.metrics.inc("engine.keys.contains_many", len(found))
        return found

    def range_io_cost_breakdown(self, low: object, high: object
                                ) -> Tuple[List[Pair], List[int]]:
        """The fan-out cost probe, one thread per shard.

        Each per-shard probe clears and rolls back only that shard's caches
        and counters, so the concurrent probes touch disjoint state; results
        merge in shard order, identical to the sequential engine's.
        """
        self._require_range_support()

        def prober(engine: DictionaryEngine):
            return lambda: engine.range_io_cost(low, high)

        results = self._fan_out([prober(engine)
                                 for engine in self._engines()])
        merged = [pairs for pairs, _cost in results]
        costs = [cost for _pairs, cost in results]
        pairs = list(heapq.merge(*merged, key=lambda pair: pair[0]))
        return pairs, costs


def make_sharded_engine(inner: object = DEFAULT_INNER, *,
                        config: Optional[EngineConfig] = None,
                        shards: int = DEFAULT_SHARDS,
                        block_size: int = 64,
                        cache_blocks: int = 0,
                        seed: RandomLike = None,
                        backend: str = "auto",
                        sample_operations: bool = False,
                        inner_params: Optional[Mapping[str, object]] = None,
                        router: object = "modulo",
                        vnodes: Optional[int] = None,
                        weights: Optional[Mapping[int, float]] = None,
                        parallel: object = False,
                        max_workers: Optional[int] = None,
                        plane: Optional[str] = None,
                        replication: int = 1,
                        read_policy: str = "primary",
                        durability_dir: Optional[str] = None,
                        durability_mode: str = "logged",
                        fsync: bool = True,
                        telemetry: bool = False
                        ) -> ShardedDictionaryEngine:
    """Convenience constructor: a sharded engine over ``shards`` × ``inner``.

    The primary spelling is ``make_sharded_engine(config=cfg)`` with an
    :class:`~repro.api.config.EngineConfig` — one typed, serializable
    object the CLI, the durability manifest, and the network server all
    share.  The keyword arguments below are the legacy spelling; they
    build the same config and delegate, and cannot be combined with an
    explicit ``config=``.

    ``inner`` is a registry name or a per-shard sequence of names
    (heterogeneous shards); ``inner_params`` are structure-specific extras
    applied to every shard; ``router`` / ``vnodes`` / ``weights`` select
    the routing strategy (``"modulo"``, ``"consistent"``, or ``"weighted"``
    with per-shard capacity weights); ``parallel`` selects the dispatch
    backend — ``"none"`` (sequential), ``"thread"`` (PR 3's thread-pool
    fan-out; ``True`` is a backward-compatible alias) or ``"process"``
    (long-lived worker processes that escape the GIL, see
    :class:`~repro.api.process_engine.ProcessShardedDictionaryEngine`) —
    with ``max_workers`` capping the pool and ``plane`` choosing the
    process backend's data plane (``"shm"`` shared-memory rings, the
    default, or ``"pipe"`` for the original pickled pipe).  All validation
    is the registry's.

    ``replication`` and ``durability_dir`` turn the process backend into a
    durable store (see :mod:`repro.replication`): with ``replication=N``
    every write fans out to a primary plus ``N - 1`` replica shards hosted
    on other workers, and with a ``durability_dir`` each primary keeps an
    op log plus checkpointed snapshots there, so crashed workers recover
    their state instead of restarting empty.  ``replication=1`` with no
    durability directory is today's process engine, bit for bit.  ``fsync``
    set to ``False`` trades machine-crash durability for speed (process
    crashes stay covered).

    ``durability_mode`` picks what the durable artifacts may reveal:
    ``"logged"`` (the default) keeps the full mutation history in the op
    logs until the next checkpoint, so a stolen durability directory leaks
    the operation history the HI structures hide; ``"secure"`` restores
    the paper's anti-persistence guarantee end-to-end — deletes trigger a
    history-redacting log compaction at the next ``barrier()`` or
    ``checkpoint()``, after which no on-disk byte in the durability
    directory encodes a deleted key (checkpoint images are written from
    the canonical HI layouts, so they are history-independent already).

    ``read_policy`` picks where a replicated engine serves reads from:
    ``"primary"`` (the default — replicas are failover-only),
    ``"round-robin"`` (point reads rotate and bulk sub-batches fan across
    every live copy of a shard), or ``"any-after-barrier"`` (like
    round-robin, but a replica only joins the read set once it acked the
    latest ``barrier()``/``checkpoint()`` — the instant history
    independence guarantees it is byte-identical to the primary).
    """
    from repro.api.registry import make_dictionary

    if config is not None:
        legacy = {"inner": (inner, DEFAULT_INNER),
                  "shards": (shards, DEFAULT_SHARDS),
                  "block_size": (block_size, 64),
                  "cache_blocks": (cache_blocks, 0),
                  "seed": (seed, None), "backend": (backend, "auto"),
                  "sample_operations": (sample_operations, False),
                  "inner_params": (inner_params, None),
                  "router": (router, "modulo"), "vnodes": (vnodes, None),
                  "weights": (weights, None), "parallel": (parallel, False),
                  "max_workers": (max_workers, None), "plane": (plane, None),
                  "replication": (replication, 1),
                  "read_policy": (read_policy, "primary"),
                  "durability_dir": (durability_dir, None),
                  "durability_mode": (durability_mode, "logged"),
                  "fsync": (fsync, True),
                  "telemetry": (telemetry, False)}
        overridden = sorted(name for name, (value, default) in legacy.items()
                            if value != default)
        if overridden:
            raise ConfigurationError(
                "pass either config=... or the legacy keyword arguments, "
                "not both (got config plus %s)" % ", ".join(overridden))
        if not isinstance(config, EngineConfig):
            raise ConfigurationError(
                "config must be an EngineConfig, got %r" % (config,))
    else:
        config = EngineConfig(
            inner=inner, shards=shards, block_size=block_size,
            cache_blocks=cache_blocks, seed=seed, backend=backend,
            inner_params=dict(inner_params or {}),
            router=make_router(router, vnodes=vnodes,
                               weights=weights).spec(),
            parallel=parallel, max_workers=max_workers, plane=plane,
            replication=replication, read_policy=read_policy,
            durability_dir=durability_dir,
            durability_mode=durability_mode, fsync=fsync,
            sample_operations=sample_operations, telemetry=telemetry)
    config.validate()
    structure = make_dictionary("sharded", block_size=config.block_size,
                                cache_blocks=config.cache_blocks,
                                seed=config.seed, backend=config.backend,
                                shards=config.shards, inner=config.inner,
                                router=dict(config.router),
                                inner_params=dict(config.inner_params))
    if config.parallel == "thread":
        engine = ParallelShardedDictionaryEngine(
            structure, sample_operations=config.sample_operations,
            max_workers=config.max_workers)
    elif config.parallel == "process":
        if config.replication > 1 or config.durability_dir is not None:
            from repro.replication.engine import (
                ReplicatedShardedDictionaryEngine,
            )
            engine = ReplicatedShardedDictionaryEngine(
                structure, sample_operations=config.sample_operations,
                max_workers=config.max_workers, plane=config.plane,
                replication=config.replication,
                read_policy=config.read_policy,
                durability_dir=config.durability_dir,
                durability_mode=config.durability_mode, fsync=config.fsync)
        else:
            from repro.api.process_engine import (
                ProcessShardedDictionaryEngine,
            )
            engine = ProcessShardedDictionaryEngine(
                structure, sample_operations=config.sample_operations,
                max_workers=config.max_workers, plane=config.plane)
    else:
        engine = ShardedDictionaryEngine(
            structure, sample_operations=config.sample_operations)
    engine.engine_config = config
    if config.telemetry:
        # Opt-in request tracing (REPRO_TRACE=1 enables it without a
        # config change; the tracer is already live in that case).
        engine.tracer.enabled = True
    return engine
