"""Hash-partitioned sharding over the registry's dictionary backends.

This is the first scaling layer on top of the unified API: a
:class:`ShardedDictionary` hash-partitions the key space across ``N``
independently built registry backends (homogeneous or heterogeneous per
shard), and a :class:`ShardedDictionaryEngine` adds the orchestration a
sharded deployment needs on top of the plain
:class:`~repro.api.engine.DictionaryEngine`:

* **Deterministic routing** — :func:`shard_index` is a fixed mixing function
  of the key (no process-salted ``hash()``), so the shard a key lives on is a
  pure function of the key: reproducible across runs, machines, and restore.
  Because routing ignores operation order, a sharded dictionary built from
  history-independent shards is itself history independent.
* **Batched bulk operations** — :meth:`ShardedDictionaryEngine.insert_many`
  and :meth:`~ShardedDictionaryEngine.delete_many` group keys by shard before
  dispatch, so each shard sees one contiguous batch instead of an
  interleaving.
* **One merged stats view** — :meth:`ShardedDictionary.io_stats` aggregates
  every shard's counters; :meth:`ShardedDictionaryEngine.per_shard_io_stats`
  keeps the per-shard breakdown for imbalance analysis.
* **Shard-aware cost probes** — :meth:`ShardedDictionaryEngine.search_io_cost`
  routes to the single owning shard; ``range_io_cost`` fans out to every
  shard and merges the sorted per-shard results.
* **Per-shard snapshots** — :meth:`ShardedDictionaryEngine.snapshot_shards`
  writes one image per shard plus a JSON manifest, and
  :meth:`ShardedDictionaryEngine.restore_shards` rebuilds an engine from the
  manifest (routing determinism puts every key back on its original shard).

Construction goes through the registry like everything else::

    from repro.api import DictionaryEngine

    engine = DictionaryEngine.create("sharded", shards=4, inner="hi-skiplist",
                                     block_size=32, seed=7)
    engine.insert_many((key, key) for key in range(10_000))
    engine.per_shard_io_stats()
"""

from __future__ import annotations

import heapq
import json
import os
import zlib
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

from repro._rng import RandomLike, make_rng
from repro.api.engine import DictionaryEngine
from repro.api.protocol import HIDictionary, Pair
from repro.errors import ConfigurationError
from repro.memory.stats import IOStats

#: Default number of shards when the registry entry is built without one.
DEFAULT_SHARDS = 4
#: Default inner structure (history independent, so the default sharded
#: dictionary keeps the paper's property).
DEFAULT_INNER = "hi-skiplist"

_MASK64 = (1 << 64) - 1


def shard_index(key: object, num_shards: int) -> int:
    """The shard ``key`` routes to — a fixed, process-independent function.

    Integers go through a splitmix64-style avalanche (consecutive keys land
    on different shards); everything else is hashed by CRC-32 of its ``repr``.
    Python's built-in ``hash`` is deliberately avoided: it is salted per
    process for strings, which would break cross-run routing determinism and
    with it snapshot/restore.

    Keys that compare equal must route identically (``True == 1``,
    ``2.0 == 2``), so bools and integer-valued floats are normalised to the
    integer they equal before mixing — mirroring how the inner structures'
    ordered key comparisons already treat them as the same key.
    """
    if num_shards < 1:
        raise ConfigurationError("num_shards must be at least 1, got %r"
                                 % (num_shards,))
    if isinstance(key, (bool, int)) or \
            (isinstance(key, float) and key.is_integer()):
        mixed = (int(key) * 0x9E3779B97F4A7C15) & _MASK64
        mixed ^= mixed >> 29
        mixed = (mixed * 0xBF58476D1CE4E5B9) & _MASK64
        mixed ^= mixed >> 32
    else:
        mixed = zlib.crc32(repr(key).encode("utf-8"))
    return mixed % num_shards


def _validated_shard_spec(extra: Mapping[str, object]) -> Tuple[int, List[str], Dict[str, object]]:
    """Validate the ``shards`` / ``inner`` / ``inner_params`` extras.

    Returns ``(num_shards, inner_names, inner_params)`` with ``inner_names``
    expanded to one canonical registry name per shard.  Every invalid
    combination — zero shards, an unknown inner structure, a nested sharded
    inner, a per-shard list of the wrong length — raises
    :class:`~repro.errors.ConfigurationError`, never ``KeyError`` or
    ``AttributeError``.
    """
    from repro.api.registry import resolve

    num_shards = extra.get("shards", DEFAULT_SHARDS)
    if not isinstance(num_shards, int) or isinstance(num_shards, bool) \
            or num_shards < 1:
        raise ConfigurationError(
            "shards must be an integer >= 1, got %r (an empty-shard "
            "configuration cannot store anything)" % (num_shards,))

    inner = extra.get("inner", DEFAULT_INNER)
    if isinstance(inner, str):
        inner_names = [inner] * num_shards
    elif isinstance(inner, (list, tuple)):
        inner_names = list(inner)
        if len(inner_names) != num_shards:
            raise ConfigurationError(
                "inner names one per shard: got %d name(s) for %d shard(s)"
                % (len(inner_names), num_shards))
    else:
        raise ConfigurationError(
            "inner must be a registry name or a per-shard sequence of names, "
            "got %r" % (inner,))
    resolved = []
    for name in inner_names:
        if not isinstance(name, str):
            raise ConfigurationError("inner shard name must be a string, "
                                     "got %r" % (name,))
        canonical = resolve(name)  # ConfigurationError on unknown structures
        if canonical == "sharded":
            raise ConfigurationError("sharded dictionaries cannot nest: "
                                     "inner structure must not be 'sharded'")
        resolved.append(canonical)

    inner_params = extra.get("inner_params", None)
    if inner_params is None:
        inner_params = {}
    elif isinstance(inner_params, Mapping):
        inner_params = dict(inner_params)
    else:
        raise ConfigurationError(
            "inner_params must be a mapping of structure-specific parameters "
            "applied to every shard, got %r" % (inner_params,))
    return num_shards, resolved, inner_params


class ShardedDictionary(HIDictionary):
    """A key-addressed dictionary hash-partitioned across independent shards.

    Each shard is a complete :class:`~repro.api.protocol.HIDictionary` built
    through the registry; this class only routes, merges, and aggregates.
    Build one through ``make_dictionary("sharded", shards=..., inner=...)``
    or directly from pre-built shards (the shard list must be non-empty).
    """

    def __init__(self, shards: Sequence[HIDictionary],
                 inner_names: Optional[Sequence[str]] = None) -> None:
        shards = list(shards)
        if not shards:
            raise ConfigurationError(
                "a sharded dictionary needs at least one shard")
        self._shards: List[HIDictionary] = shards
        self.inner_names: List[str] = list(
            inner_names if inner_names is not None
            else [getattr(shard, "registry_name", type(shard).__name__)
                  for shard in shards])

    @classmethod
    def from_config(cls, config: "DictionaryConfig") -> "ShardedDictionary":
        """Registry factory: build shards from the validated extras.

        Each shard draws an independent seed from ``config.seed`` (fresh OS
        entropy per shard when the seed is ``None``, a reproducible per-shard
        stream otherwise) and is built through
        :func:`~repro.api.registry.make_dictionary`, so tracker wiring and
        per-structure validation are identical to an unsharded build.
        """
        from repro.api.registry import make_dictionary

        num_shards, inner_names, inner_params = _validated_shard_spec(
            config.extra)
        rng = make_rng(config.seed)
        shards = [
            make_dictionary(name,
                            block_size=config.block_size,
                            cache_blocks=config.cache_blocks,
                            seed=rng.getrandbits(64),
                            backend=config.backend,
                            **inner_params)
            for name in inner_names
        ]
        return cls(shards, inner_names=inner_names)

    # ------------------------------------------------------------------ #
    # Routing
    # ------------------------------------------------------------------ #

    @property
    def shards(self) -> Tuple[HIDictionary, ...]:
        """The inner dictionaries, indexed by shard number."""
        return tuple(self._shards)

    @property
    def num_shards(self) -> int:
        return len(self._shards)

    def shard_of(self, key: object) -> int:
        """The shard index ``key`` routes to."""
        return shard_index(key, len(self._shards))

    def _shard_for(self, key: object) -> HIDictionary:
        return self._shards[self.shard_of(key)]

    # ------------------------------------------------------------------ #
    # Dictionary operations (routed)
    # ------------------------------------------------------------------ #

    def insert(self, key: object, value: object = None) -> None:
        self._shard_for(key).insert(key, value)

    def upsert(self, key: object, value: object = None) -> bool:
        return self._shard_for(key).upsert(key, value)

    def delete(self, key: object) -> object:
        return self._shard_for(key).delete(key)

    def search(self, key: object) -> object:
        return self._shard_for(key).search(key)

    def contains(self, key: object) -> bool:
        return self._shard_for(key).contains(key)

    def range_query(self, low: object, high: object) -> List[Pair]:
        """Fan out to every shard and merge the sorted per-shard results."""
        per_shard = [shard.range_items(low, high) for shard in self._shards]
        return list(heapq.merge(*per_shard, key=lambda pair: pair[0]))

    # ------------------------------------------------------------------ #
    # Container protocol / merged views
    # ------------------------------------------------------------------ #

    def __len__(self) -> int:
        return sum(len(shard) for shard in self._shards)

    def __iter__(self):
        return iter(heapq.merge(*[list(shard) for shard in self._shards]))

    def items(self) -> List[Pair]:
        return list(heapq.merge(*[shard.items() for shard in self._shards],
                                key=lambda pair: pair[0]))

    def shard_sizes(self) -> List[int]:
        """Number of keys on each shard (the imbalance view)."""
        return [len(shard) for shard in self._shards]

    # ------------------------------------------------------------------ #
    # Accounting
    # ------------------------------------------------------------------ #

    def io_stats(self) -> IOStats:
        """Aggregate counters across every shard (one merged stats view)."""
        merged = IOStats()
        for stats in self.per_shard_io_stats():
            merged.reads += stats.reads
            merged.writes += stats.writes
            merged.cache_hits += stats.cache_hits
            merged.element_moves += stats.element_moves
            merged.operations += stats.operations
            for name, amount in stats.counters.items():
                merged.counters[name] = merged.counters.get(name, 0) + amount
        return merged

    def per_shard_io_stats(self) -> List[IOStats]:
        """Each shard's merged :meth:`~HIDictionary.io_stats` view, in order."""
        return [shard.io_stats() for shard in self._shards]

    def stats_objects(self) -> List[IOStats]:
        """The live counter objects behind every shard (engine probe hook).

        :class:`~repro.api.engine.DictionaryEngine` snapshots and restores
        these around its cold-cache cost probes, so sharded measurements are
        rolled back exactly like unsharded ones.
        """
        objects: List[IOStats] = []
        for shard in self._shards:
            own = getattr(shard, "stats", None)
            if own is not None:
                objects.append(own)
            tracker = getattr(shard, "io_tracker", None)
            if tracker is not None:
                objects.append(tracker.stats)
        return objects

    def clear_caches(self) -> None:
        """Clear every shard's simulated cache (engine probe hook)."""
        for shard in self._shards:
            tracker = getattr(shard, "io_tracker", None)
            if tracker is not None and tracker.cache is not None:
                tracker.cache.clear()

    # ------------------------------------------------------------------ #
    # Serialisation / auditing
    # ------------------------------------------------------------------ #

    def snapshot_slots(self) -> Sequence[object]:
        """Per-shard slot arrays concatenated in shard order.

        Shard boundaries are a deterministic function of the key set (routing
        is content-only), so the concatenation preserves whatever layout
        guarantees the inner structures give.
        """
        slots: List[object] = []
        for shard in self._shards:
            slots.extend(shard.snapshot_slots())
        return slots

    def audit_fingerprint(self) -> object:
        """Per-shard fingerprints, in shard order.

        Shard membership depends only on the key set, so two equivalent
        histories split into per-shard histories that are equivalent shard by
        shard; the tuple of shard fingerprints is the right observable for
        the weak-history-independence audit.
        """
        return tuple(shard.audit_fingerprint() for shard in self._shards)

    # ------------------------------------------------------------------ #
    # Validation
    # ------------------------------------------------------------------ #

    def check(self) -> None:
        from repro.errors import InvariantViolation

        for index, shard in enumerate(self._shards):
            shard.check()
            for key in shard:
                if self.shard_of(key) != index:
                    raise InvariantViolation(
                        "key %r lives on shard %d but routes to shard %d"
                        % (key, index, self.shard_of(key)))


class ShardedDictionaryEngine(DictionaryEngine):
    """Engine facade for a :class:`ShardedDictionary`: batched, shard-aware.

    Everything a plain :class:`~repro.api.engine.DictionaryEngine` does works
    unchanged (point operations route through the sharded structure, the
    uniform single-file ``snapshot`` persists the concatenated slot arrays);
    on top of that the bulk operations group keys by shard before dispatch,
    cost probes are shard-aware, and snapshots can be taken one file per
    shard with a manifest for restore.
    """

    #: File name of the manifest written next to the per-shard images.
    MANIFEST_NAME = "manifest.json"

    def __init__(self, structure: ShardedDictionary, *,
                 name: Optional[str] = None,
                 sample_operations: bool = False) -> None:
        if not isinstance(structure, ShardedDictionary):
            raise ConfigurationError(
                "ShardedDictionaryEngine requires a ShardedDictionary; build "
                "one with make_dictionary('sharded', shards=..., inner=...) "
                "or wrap %r in a plain DictionaryEngine instead"
                % (type(structure).__name__,))
        super().__init__(structure, name=name,
                         sample_operations=sample_operations)
        self._shard_engines = [
            DictionaryEngine(shard, name="%s[%d]" % (inner, index))
            for index, (shard, inner) in enumerate(
                zip(structure.shards, structure.inner_names))
        ]

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #

    @property
    def shard_engines(self) -> Tuple[DictionaryEngine, ...]:
        """One plain engine per shard (for per-shard probes and snapshots)."""
        return tuple(self._shard_engines)

    @property
    def num_shards(self) -> int:
        return self._structure.num_shards

    def shard_sizes(self) -> List[int]:
        return self._structure.shard_sizes()

    def per_shard_io_stats(self) -> List[IOStats]:
        """Per-shard counters; their sum is :meth:`io_stats`."""
        return self._structure.per_shard_io_stats()

    # ------------------------------------------------------------------ #
    # Batched bulk operations
    # ------------------------------------------------------------------ #

    def insert_many(self, entries: Iterable[object]) -> int:
        """Insert keys or pairs, grouped by shard before dispatch.

        Each shard receives its keys as one contiguous batch (relative input
        order preserved within the batch), which is what gives sharding its
        locality win over interleaved routing.  Returns the number inserted.
        """
        batches: List[List[Pair]] = [[] for _ in self._shard_engines]
        count = 0
        for entry in entries:
            key, value = self._as_pair(entry)
            batches[self._structure.shard_of(key)].append((key, value))
            count += 1
        for engine, batch in zip(self._shard_engines, batches):
            for key, value in batch:
                with self._operation("insert"):
                    engine.structure.insert(key, value)
        return count

    def delete_many(self, keys: Iterable[object]) -> List[object]:
        """Delete keys grouped by shard; values return in the input order."""
        keys = list(keys)
        batches: List[List[Tuple[int, object]]] = [[] for _ in self._shard_engines]
        for position, key in enumerate(keys):
            batches[self._structure.shard_of(key)].append((position, key))
        values: List[object] = [None] * len(keys)
        for engine, batch in zip(self._shard_engines, batches):
            for position, key in batch:
                with self._operation("delete"):
                    values[position] = engine.structure.delete(key)
        return values

    def contains_many(self, keys: Iterable[object]) -> List[bool]:
        """Membership for every key, grouped by shard; input order preserved."""
        keys = list(keys)
        batches: List[List[Tuple[int, object]]] = [[] for _ in self._shard_engines]
        for position, key in enumerate(keys):
            batches[self._structure.shard_of(key)].append((position, key))
        found: List[bool] = [False] * len(keys)
        for engine, batch in zip(self._shard_engines, batches):
            for position, key in batch:
                with self._operation("contains"):
                    found[position] = engine.structure.contains(key)
        return found

    # ------------------------------------------------------------------ #
    # Shard-aware cost probes
    # ------------------------------------------------------------------ #

    def search_io_cost(self, key: object) -> int:
        """Cold-cache search cost on the single shard that owns ``key``."""
        return self._shard_engines[self._structure.shard_of(key)] \
            .search_io_cost(key)

    def range_io_cost(self, low: object, high: object) -> Tuple[List[Pair], int]:
        """Fan the range out to every shard; merge results, sum the costs.

        A range query cannot be routed — every shard may own keys inside the
        interval — so its cost is inherently the sum over shards.  Like the
        base probe, each per-shard measurement is rolled back afterwards.
        """
        merged: List[List[Pair]] = []
        total = 0
        for engine in self._shard_engines:
            pairs, cost = engine.range_io_cost(low, high)
            merged.append(pairs)
            total += cost
        pairs = list(heapq.merge(*merged, key=lambda pair: pair[0]))
        return pairs, total

    # ------------------------------------------------------------------ #
    # Per-shard snapshots
    # ------------------------------------------------------------------ #

    def snapshot_shards(self, directory: str, *,
                        page_size: int = 4096,
                        payload_size: int = 64,
                        shuffle_pages: bool = False,
                        seed: RandomLike = None) -> Dict[str, object]:
        """Write one image per shard into ``directory`` plus a JSON manifest.

        Returns the manifest (also written to :attr:`MANIFEST_NAME` inside
        the directory): shard count, inner structure names, and for each
        shard the image file name and the snapshot metadata needed to decode
        it.  :meth:`restore_shards` consumes exactly this layout.
        """
        os.makedirs(directory, exist_ok=True)
        shards = []
        for index, engine in enumerate(self._shard_engines):
            file_name = "shard-%04d.img" % index
            _paged, metadata = engine.snapshot(
                os.path.join(directory, file_name),
                page_size=page_size, payload_size=payload_size,
                shuffle_pages=shuffle_pages, seed=seed)
            shards.append({
                "file": file_name,
                "kind": metadata.kind,
                "num_slots": metadata.num_slots,
                "num_pages": metadata.num_pages,
                "page_size": metadata.page_size,
                "payload_size": metadata.payload_size,
                "page_order": list(metadata.page_order),
            })
        manifest = {
            "structure": self.name,
            "num_shards": self.num_shards,
            "inner": list(self._structure.inner_names),
            "shards": shards,
        }
        with open(os.path.join(directory, self.MANIFEST_NAME), "w",
                  encoding="utf-8") as handle:
            json.dump(manifest, handle, indent=2)
        return manifest

    @classmethod
    def restore_shards(cls, directory: str, *,
                       block_size: int = 64,
                       cache_blocks: int = 0,
                       seed: RandomLike = None,
                       backend: str = "auto",
                       inner_params: Optional[Mapping[str, object]] = None
                       ) -> "ShardedDictionaryEngine":
        """Rebuild a sharded engine from a :meth:`snapshot_shards` directory.

        Shard count and inner structure names come from the manifest; the
        recovered records are re-inserted, and routing determinism guarantees
        every key lands back on the shard its image came from.  Slots that
        are bare keys (structures whose snapshot persists the physical slot
        array rather than pairs) restore with a ``None`` value, matching what
        the single-file snapshot path preserves.
        """
        from repro.api.registry import make_dictionary
        from repro.storage.pager import PagedFile
        from repro.storage.snapshot import SnapshotMetadata, load_records

        manifest_path = os.path.join(directory, cls.MANIFEST_NAME)
        try:
            with open(manifest_path, encoding="utf-8") as handle:
                manifest = json.load(handle)
        except (OSError, ValueError) as error:
            raise ConfigurationError(
                "cannot read sharded snapshot manifest %r: %s"
                % (manifest_path, error)) from error
        num_shards = manifest.get("num_shards")
        inner = manifest.get("inner")
        shard_entries = manifest.get("shards")
        if not isinstance(num_shards, int) or not isinstance(inner, list) \
                or not isinstance(shard_entries, list) \
                or len(shard_entries) != num_shards:
            raise ConfigurationError(
                "sharded snapshot manifest %r is malformed" % (manifest_path,))

        structure = make_dictionary("sharded", block_size=block_size,
                                    cache_blocks=cache_blocks, seed=seed,
                                    backend=backend, shards=num_shards,
                                    inner=inner,
                                    inner_params=dict(inner_params or {}))
        engine = cls(structure)
        for index, entry in enumerate(shard_entries):
            try:
                metadata = SnapshotMetadata(
                    kind=entry["kind"], num_slots=entry["num_slots"],
                    num_pages=entry["num_pages"],
                    page_size=entry["page_size"],
                    payload_size=entry["payload_size"],
                    page_order=tuple(entry["page_order"]))
                file_name = entry["file"]
            except (KeyError, TypeError) as error:
                raise ConfigurationError(
                    "sharded snapshot manifest %r shard entry %d is "
                    "malformed: %s" % (manifest_path, index, error)) from error
            paged = PagedFile(page_size=metadata.page_size,
                              path=os.path.join(directory, file_name))
            for slot in load_records(paged, metadata):
                if slot is None:
                    continue
                if isinstance(slot, tuple) and len(slot) == 2:
                    key, value = slot
                else:
                    key, value = slot, None
                engine.shard_engines[index].structure.insert(key, value)
        return engine


def make_sharded_engine(inner: object = DEFAULT_INNER, *,
                        shards: int = DEFAULT_SHARDS,
                        block_size: int = 64,
                        cache_blocks: int = 0,
                        seed: RandomLike = None,
                        backend: str = "auto",
                        sample_operations: bool = False,
                        inner_params: Optional[Mapping[str, object]] = None
                        ) -> ShardedDictionaryEngine:
    """Convenience constructor: a sharded engine over ``shards`` × ``inner``.

    ``inner`` is a registry name or a per-shard sequence of names
    (heterogeneous shards); ``inner_params`` are structure-specific extras
    applied to every shard.  All validation is the registry's.
    """
    from repro.api.registry import make_dictionary

    structure = make_dictionary("sharded", block_size=block_size,
                                cache_blocks=cache_blocks, seed=seed,
                                backend=backend, shards=shards, inner=inner,
                                inner_params=dict(inner_params or {}))
    return ShardedDictionaryEngine(structure,
                                   sample_operations=sample_operations)
