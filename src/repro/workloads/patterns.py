"""Structured workload patterns beyond the paper's uniform-random inserts.

The generators in :mod:`repro.workloads.generators` cover the paper's own
experiment (uniform random inserts) and its motivating scenarios (redaction,
hammering one end).  The patterns here model the broader database workloads a
user of these index structures would actually run, and are used by the
extension benches and the examples:

* :func:`zipfian_insert_trace` — skewed key popularity (hot ranges), the
  standard model for real key distributions.
* :func:`sliding_window_trace` — a time-window/retention workload: new keys
  arrive at the front while the oldest are deleted, exactly the
  "pouring sand in one place, letting it out at another" trough from the
  paper's introduction.
* :func:`trough_trace` — the symmetric version: inserts cluster around a hot
  point that drifts across the key space while deletes drain a trailing
  region, producing the local density waves a classic PMA cannot hide.
* :func:`search_mix_trace` — an OLTP-style mix of point lookups over a
  pre-loaded key set with a trickle of inserts and deletes.
* :func:`batch_redaction_trace` — bulk load followed by the redaction of one
  contiguous key range (the "failed redaction" scenario: the observer tries
  to locate the hole).
* :func:`elastic_churn_trace` — alternating ingest-heavy and drain-heavy
  phases, the population swell/recede pattern that motivates elastic shard
  counts (grow at the peaks, shrink in the troughs).
"""

from __future__ import annotations

import bisect
from typing import List, Optional

from repro._rng import RandomLike, make_rng
from repro.errors import ConfigurationError
from repro.workloads.generators import Operation, OperationKind


def _zipf_weights(population: int, skew: float) -> List[float]:
    """Unnormalised Zipf weights ``1/rank^skew`` for ranks ``1..population``."""
    return [1.0 / (rank ** skew) for rank in range(1, population + 1)]


def zipfian_insert_trace(count: int, key_space: Optional[int] = None,
                         skew: float = 1.0,
                         seed: RandomLike = None) -> List[Operation]:
    """Insert ``count`` distinct keys drawn from a Zipf-skewed popularity order.

    The key space is ranked by popularity at a random permutation (so the hot
    keys are scattered across the key space, not all at the front), and keys
    are sampled without replacement proportionally to ``1/rank^skew``.
    ``skew=0`` degenerates to uniform sampling; larger values concentrate the
    workload on a few hot regions.
    """
    if count < 0:
        raise ConfigurationError("count must be non-negative")
    if skew < 0:
        raise ConfigurationError("skew must be non-negative")
    rng = make_rng(seed)
    key_space = key_space if key_space is not None else max(10 * count, 1000)
    if count > key_space:
        raise ConfigurationError("cannot draw %d distinct keys from a space of %d"
                                 % (count, key_space))
    ranked_keys = list(range(key_space))
    rng.shuffle(ranked_keys)
    weights = _zipf_weights(key_space, skew)
    cumulative: List[float] = []
    running = 0.0
    for weight in weights:
        running += weight
        cumulative.append(running)
    # Weighted sampling without replacement via rejection against the static
    # cumulative distribution; the rejection rate stays low because the
    # requested count is at most a tenth of the key space by default.
    chosen: List[int] = []
    taken = [False] * key_space
    while len(chosen) < count:
        rank = bisect.bisect_left(cumulative, rng.random() * running)
        rank = min(rank, key_space - 1)
        if taken[rank]:
            # Fall back to the nearest untaken rank once rejections dominate.
            if len(chosen) > 0.9 * key_space:
                rank = next(index for index, used in enumerate(taken) if not used)
            else:
                continue
        taken[rank] = True
        chosen.append(ranked_keys[rank])
    return [Operation(OperationKind.INSERT, key) for key in chosen]


def sliding_window_trace(arrivals: int, window: int,
                         stride: int = 1,
                         start: int = 0) -> List[Operation]:
    """A retention-window workload: insert fresh keys, expire the oldest.

    Keys arrive in increasing order ``start, start + stride, ...``; once more
    than ``window`` keys are live, every new arrival is paired with a delete
    of the oldest live key.  The live set is always a contiguous block of
    ``<= window`` keys sliding upward through the key space — the workload
    under which a classic PMA develops a permanent dense "front" and sparse
    "tail", while an HI PMA's layout stays indistinguishable from a fresh
    build of the same window.
    """
    if arrivals < 0:
        raise ConfigurationError("arrivals must be non-negative")
    if window < 1:
        raise ConfigurationError("window must be at least 1")
    if stride < 1:
        raise ConfigurationError("stride must be at least 1")
    operations: List[Operation] = []
    live: List[int] = []
    key = start
    for _ in range(arrivals):
        operations.append(Operation(OperationKind.INSERT, key))
        live.append(key)
        key += stride
        if len(live) > window:
            operations.append(Operation(OperationKind.DELETE, live.pop(0)))
    return operations


def trough_trace(count: int, hot_width: int = 64,
                 drift_per_insert: int = 2,
                 drain_lag: int = 512,
                 seed: RandomLike = None) -> List[Operation]:
    """The sand-trough workload from the paper's introduction.

    Inserts land uniformly inside a *hot window* of width ``hot_width`` whose
    centre drifts upward by ``drift_per_insert`` keys per insert.  Once the
    hot window has moved ``drain_lag`` keys past the oldest live key, each
    insert is paired with a delete of the oldest live key (the drain).  The
    result is a moving bump of recent arrivals and a trailing depression of
    departures — the picture the paper uses to explain why PMA densities are
    history dependent.
    """
    if count < 0:
        raise ConfigurationError("count must be non-negative")
    if hot_width < 1 or drift_per_insert < 0 or drain_lag < 1:
        raise ConfigurationError("hot_width and drain_lag must be positive, "
                                 "drift_per_insert non-negative")
    rng = make_rng(seed)
    operations: List[Operation] = []
    live_sorted: List[int] = []
    used = set()
    center = drain_lag
    while len(operations) < count:
        key = center + rng.randrange(-hot_width, hot_width + 1)
        if key in used:
            center += drift_per_insert
            continue
        used.add(key)
        bisect.insort(live_sorted, key)
        operations.append(Operation(OperationKind.INSERT, key))
        center += drift_per_insert
        if len(operations) < count and live_sorted \
                and center - live_sorted[0] > drain_lag:
            oldest = live_sorted.pop(0)
            operations.append(Operation(OperationKind.DELETE, oldest))
    return operations[:count]


def search_mix_trace(preload: int, operations: int,
                     search_fraction: float = 0.9,
                     key_space: Optional[int] = None,
                     seed: RandomLike = None) -> List[Operation]:
    """An OLTP-style mix: bulk load, then mostly searches with a trickle of updates.

    The first ``preload`` operations are random distinct inserts; the
    remaining ``operations`` are searches of live keys with probability
    ``search_fraction``, otherwise alternating inserts of fresh keys and
    deletes of live keys.
    """
    if not 0.0 <= search_fraction <= 1.0:
        raise ConfigurationError("search_fraction must be in [0, 1]")
    if preload < 1:
        raise ConfigurationError("preload must be at least 1")
    rng = make_rng(seed)
    key_space = key_space if key_space is not None else max(10 * (preload + operations),
                                                            1000)
    live = rng.sample(range(key_space), preload)
    used = set(live)
    trace = [Operation(OperationKind.INSERT, key) for key in live]
    insert_next = True
    while len(trace) < preload + operations:
        if live and rng.random() < search_fraction:
            trace.append(Operation(OperationKind.SEARCH, rng.choice(live)))
        elif insert_next or not live:
            key = rng.randrange(key_space)
            if key in used:
                continue
            used.add(key)
            live.append(key)
            trace.append(Operation(OperationKind.INSERT, key))
            insert_next = False
        else:
            index = rng.randrange(len(live))
            trace.append(Operation(OperationKind.DELETE, live.pop(index)))
            insert_next = True
    return trace


def batch_redaction_trace(initial: int, redaction_start: float = 0.4,
                          redaction_width: float = 0.2,
                          key_space: Optional[int] = None,
                          seed: RandomLike = None) -> List[Operation]:
    """Bulk load, then redact one contiguous slice of the key space.

    ``redaction_start`` and ``redaction_width`` are fractions of the sorted
    key population.  This is the sharpest version of the secure-delete
    scenario: in a history-dependent layout the deleted slice leaves a
    visible depression exactly where the redacted keys lived.
    """
    if initial < 1:
        raise ConfigurationError("initial must be at least 1")
    if not 0.0 <= redaction_start <= 1.0 or not 0.0 < redaction_width <= 1.0:
        raise ConfigurationError("redaction bounds must be fractions in [0, 1]")
    rng = make_rng(seed)
    key_space = key_space if key_space is not None else max(10 * initial, 1000)
    keys = rng.sample(range(key_space), initial)
    trace = [Operation(OperationKind.INSERT, key) for key in keys]
    ordered = sorted(keys)
    start_index = int(redaction_start * initial)
    stop_index = min(initial, start_index + max(1, int(redaction_width * initial)))
    for key in ordered[start_index:stop_index]:
        trace.append(Operation(OperationKind.DELETE, key))
    return trace


def zipf_mixed_trace(count: int, preload: Optional[int] = None,
                     skew: float = 1.1,
                     search_fraction: float = 0.55,
                     delete_fraction: float = 0.15,
                     key_space: Optional[int] = None,
                     seed: RandomLike = None) -> List[Operation]:
    """A mixed read/write workload with Zipf-skewed key popularity.

    The first ``preload`` operations (default ``count // 4``) bulk-load
    distinct keys drawn from a Zipf popularity ranking over a shuffled key
    space; the rest are a mix of searches (``search_fraction``), deletes of
    live keys (``delete_fraction``, uniform — retention, not popularity) and
    inserts of fresh keys (the remainder).  Searches sample the *live* keys
    proportionally to their Zipf weight (a Fenwick tree over the popularity
    ranking keeps that draw at ``O(log keyspace)``), so the hottest keys are
    searched over and over.  ``count`` is the total trace length, preload
    included.

    Because popular keys are hit over and over while routing hashes keys
    uniformly, replaying this trace against a sharded dictionary produces
    genuinely imbalanced per-shard traffic — the scenario the sharded
    engine's per-shard stats view exists to expose.  ``skew=0`` degenerates
    to a uniform mix.
    """
    from repro.pma.fenwick import FenwickTree

    if count < 0:
        raise ConfigurationError("count must be non-negative")
    if skew < 0:
        raise ConfigurationError("skew must be non-negative")
    if not 0.0 <= search_fraction <= 1.0 or not 0.0 <= delete_fraction <= 1.0 \
            or search_fraction + delete_fraction > 1.0:
        raise ConfigurationError(
            "search_fraction and delete_fraction must be fractions in [0, 1] "
            "summing to at most 1")
    preload = preload if preload is not None \
        else min(count, max(1, count // 4))
    if preload > count:
        raise ConfigurationError("preload cannot exceed the total count")
    rng = make_rng(seed)
    key_space = key_space if key_space is not None else max(10 * count, 1000)

    # Popularity ranking: rank r has weight ~ 1/(r+1)^skew (scaled to
    # integers for the Fenwick draw); the ranked keys are a random
    # permutation of the key space so hot keys are scattered across it.
    weight_scale = 1_000_000
    ranked_keys = list(range(key_space))
    rng.shuffle(ranked_keys)
    rank_of = {key: rank for rank, key in enumerate(ranked_keys)}
    weights = [max(1, int(weight_scale / ((rank + 1) ** skew)))
               for rank in range(key_space)]
    cumulative: List[int] = []
    running = 0
    for weight in weights:
        running += weight
        cumulative.append(running)
    live_weights = FenwickTree(key_space)

    def draw_rank() -> int:
        return min(bisect.bisect_left(cumulative,
                                      rng.randrange(running) + 1),
                   key_space - 1)

    live: List[int] = []
    live_index = {}
    used = set()

    def add_live(key: int) -> None:
        live_index[key] = len(live)
        live.append(key)
        live_weights.set(rank_of[key], weights[rank_of[key]])

    def remove_live(key: int) -> None:
        index = live_index.pop(key)
        last = live.pop()
        if last != key:
            live[index] = last
            live_index[last] = index
        live_weights.set(rank_of[key], 0)

    def draw_fresh() -> Optional[int]:
        for _ in range(64):
            key = ranked_keys[draw_rank()]
            if key not in used:
                return key
        for key in ranked_keys:
            if key not in used:
                return key
        return None

    def draw_live_hot() -> int:
        # Zipf-weighted draw restricted to the live keys: O(log keyspace).
        rank, _within = live_weights.find_by_rank(
            rng.randrange(live_weights.total()) + 1)
        return ranked_keys[rank]

    trace: List[Operation] = []
    while len(trace) < preload:
        key = draw_fresh()
        if key is None:
            raise ConfigurationError(
                "key space of %d exhausted during preload" % (key_space,))
        used.add(key)
        add_live(key)
        trace.append(Operation(OperationKind.INSERT, key))
    while len(trace) < count:
        roll = rng.random()
        if roll < search_fraction and live:
            trace.append(Operation(OperationKind.SEARCH, draw_live_hot()))
        elif roll < search_fraction + delete_fraction and len(live) > 1:
            key = live[rng.randrange(len(live))]
            remove_live(key)
            trace.append(Operation(OperationKind.DELETE, key))
        else:
            key = draw_fresh()
            if key is None:
                # Key space exhausted: fall back to reads so the trace
                # still reaches the requested length.
                if not live:
                    raise ConfigurationError(
                        "key space of %d exhausted with no live keys left"
                        % (key_space,))
                trace.append(Operation(OperationKind.SEARCH, draw_live_hot()))
                continue
            used.add(key)
            add_live(key)
            trace.append(Operation(OperationKind.INSERT, key))
    return trace


def elastic_churn_trace(count: int, phases: int = 4,
                        grow_insert_fraction: float = 0.8,
                        shrink_delete_fraction: float = 0.7,
                        search_fraction: float = 0.15,
                        key_space: Optional[int] = None,
                        seed: RandomLike = None) -> List[Operation]:
    """Alternating grow/shrink phases — the elastic-capacity workload.

    The trace alternates ``phases`` equal-length phases.  *Grow* phases are
    ingest-heavy (``grow_insert_fraction`` inserts of fresh keys, the rest a
    mix of searches and occasional deletes), *shrink* phases are
    drain-heavy (``shrink_delete_fraction`` deletes of live keys, the rest
    searches with a trickle of inserts), so the live population swells and
    recedes like traffic that scales a deployment out and back in.  Replay
    it against a sharded dictionary and call
    :meth:`~repro.api.sharded.ShardedDictionary.add_shard` at the peaks /
    :meth:`~repro.api.sharded.ShardedDictionary.remove_shard` in the troughs
    to exercise exactly what the consistent-hash router exists for.

    Phase boundaries, key draws and operation mixes are all functions of
    ``seed``, so the trace is reproducible; reads and deletes only ever
    touch live keys, so any replay target accepts it.
    """
    if count < 0:
        raise ConfigurationError("count must be non-negative")
    if phases < 1:
        raise ConfigurationError("phases must be at least 1")
    for name, fraction in (("grow_insert_fraction", grow_insert_fraction),
                           ("shrink_delete_fraction", shrink_delete_fraction),
                           ("search_fraction", search_fraction)):
        if not 0.0 <= fraction <= 1.0:
            raise ConfigurationError("%s must be a fraction in [0, 1], got %r"
                                     % (name, fraction))
    for name, dominant in (("grow_insert_fraction", grow_insert_fraction),
                           ("shrink_delete_fraction",
                            shrink_delete_fraction)):
        if dominant + search_fraction > 1.0:
            raise ConfigurationError(
                "%s (%r) + search_fraction (%r) must not exceed 1; the "
                "remainder is the phase's minority operation"
                % (name, dominant, search_fraction))
    rng = make_rng(seed)
    key_space = key_space if key_space is not None else max(10 * count, 1000)
    if key_space < 1:
        raise ConfigurationError("key_space must be at least 1, got %r"
                                 % (key_space,))
    trace: List[Operation] = []
    live: List[int] = []
    used = set()
    phase_length = max(1, (count + phases - 1) // phases)

    def fresh_key() -> Optional[int]:
        for _attempt in range(64):
            key = rng.randrange(key_space)
            if key not in used:
                return key
        for key in range(key_space):  # dense fallback: scan for a gap
            if key not in used:
                return key
        return None

    def insert() -> bool:
        key = fresh_key()
        if key is None:
            return False
        used.add(key)
        bisect.insort(live, key)
        trace.append(Operation(OperationKind.INSERT, key))
        return True

    def delete() -> bool:
        if not live:
            return False
        key = live.pop(rng.randrange(len(live)))
        used.discard(key)
        trace.append(Operation(OperationKind.DELETE, key))
        return True

    def search() -> bool:
        if not live:
            return False
        trace.append(Operation(OperationKind.SEARCH,
                               live[rng.randrange(len(live))]))
        return True

    while len(trace) < count:
        growing = (len(trace) // phase_length) % 2 == 0
        roll = rng.random()
        if growing:
            if roll < grow_insert_fraction:
                preferred = (insert, search, delete)
            elif roll < grow_insert_fraction + search_fraction:
                preferred = (search, insert, delete)
            else:
                preferred = (delete, insert, search)
        else:
            if roll < shrink_delete_fraction:
                preferred = (delete, search, insert)
            elif roll < shrink_delete_fraction + search_fraction:
                preferred = (search, delete, insert)
            else:
                preferred = (insert, search, delete)
        if not any(operation() for operation in preferred):
            raise ConfigurationError(
                "elastic trace generation stalled: key space of %d exhausted "
                "with no live keys left" % (key_space,))
    return trace


def live_keys_of(trace: List[Operation]) -> List[int]:
    """The keys still live after replaying ``trace``, in sorted order.

    Convenience for tests and examples that need to know the final state a
    trace produces (e.g. to build the equivalent-state comparison structure
    in a history audit).
    """
    live = set()
    for operation in trace:
        if operation.kind is OperationKind.INSERT:
            live.add(operation.key)
        elif operation.kind is OperationKind.DELETE:
            live.discard(operation.key)
    return sorted(live)
