"""Reproducible operation traces.

A trace is a list of :class:`Operation` records.  Each operation carries a
*key* (an integer drawn from a configurable key space); the replay helpers
translate keys into ranks when the target structure is rank-addressed, so the
same trace can drive a PMA, the HI cache-oblivious B-tree, a B-tree or a skip
list — which is what the comparison benches need.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence

from repro._rng import RandomLike, make_rng
from repro.errors import ConfigurationError


class OperationKind(enum.Enum):
    """The kinds of operations a trace can contain."""

    INSERT = "insert"
    DELETE = "delete"
    SEARCH = "search"


@dataclass(frozen=True)
class Operation:
    """One operation of a workload trace."""

    kind: OperationKind
    key: int

    def __str__(self) -> str:
        return "%s(%d)" % (self.kind.value, self.key)


def _unique_keys(count: int, key_space: int, rng) -> List[int]:
    if count > key_space:
        raise ConfigurationError(
            "cannot draw %d distinct keys from a key space of %d" % (count, key_space))
    return rng.sample(range(key_space), count)


def random_insert_trace(count: int, key_space: Optional[int] = None,
                        seed: RandomLike = None) -> List[Operation]:
    """Insert ``count`` distinct uniformly random keys (the paper's workload)."""
    rng = make_rng(seed)
    key_space = key_space if key_space is not None else max(10 * count, 1000)
    keys = _unique_keys(count, key_space, rng)
    return [Operation(OperationKind.INSERT, key) for key in keys]


def sequential_insert_trace(count: int, start: int = 1) -> List[Operation]:
    """Insert ``start, start+1, ...`` in increasing order (always appends)."""
    return [Operation(OperationKind.INSERT, start + index) for index in range(count)]


def reverse_sequential_insert_trace(count: int, start: int = 1) -> List[Operation]:
    """Insert keys in decreasing order (always prepends — the PMA's worst hammer)."""
    return [Operation(OperationKind.INSERT, start + count - 1 - index)
            for index in range(count)]


def clustered_insert_trace(count: int, clusters: int = 8,
                           cluster_width: int = 1000,
                           seed: RandomLike = None) -> List[Operation]:
    """Inserts concentrated around a few hot spots in the key space.

    Models the "pouring sand into a trough at one location" picture from the
    paper's introduction: local densities would build up in a classic PMA.
    """
    if clusters < 1:
        raise ConfigurationError("clusters must be at least 1")
    if cluster_width < 1:
        raise ConfigurationError("cluster_width must be at least 1")
    if 2 * clusters * cluster_width < 2 * count:
        # Rejection sampling needs slack; without it the generator would stall
        # (or loop forever) once the hot windows are exhausted.
        raise ConfigurationError(
            "cannot draw %d distinct keys from %d cluster(s) of width %d; "
            "increase cluster_width or clusters" % (count, clusters, cluster_width))
    rng = make_rng(seed)
    centers = [rng.randrange(cluster_width, cluster_width * 1000)
               for _ in range(clusters)]
    operations: List[Operation] = []
    used = set()
    attempts = 0
    max_attempts = 100 * count + 1000
    while len(operations) < count:
        attempts += 1
        if attempts > max_attempts:
            raise ConfigurationError(
                "clustered trace generation stalled after %d attempts; the "
                "cluster windows overlap too much for %d distinct keys"
                % (attempts, count))
        center = rng.choice(centers)
        key = center + rng.randrange(-cluster_width, cluster_width)
        if key in used:
            continue
        used.add(key)
        operations.append(Operation(OperationKind.INSERT, key))
    return operations


def insert_delete_trace(count: int, delete_fraction: float = 0.3,
                        key_space: Optional[int] = None,
                        seed: RandomLike = None) -> List[Operation]:
    """A mixed workload: random inserts interleaved with deletes of live keys."""
    if not 0.0 <= delete_fraction < 1.0:
        raise ConfigurationError("delete_fraction must be in [0, 1)")
    rng = make_rng(seed)
    key_space = key_space if key_space is not None else max(10 * count, 1000)
    live: List[int] = []
    used = set()
    operations: List[Operation] = []
    while len(operations) < count:
        do_delete = live and rng.random() < delete_fraction
        if do_delete:
            index = rng.randrange(len(live))
            key = live.pop(index)
            operations.append(Operation(OperationKind.DELETE, key))
        else:
            key = rng.randrange(key_space)
            if key in used:
                continue
            used.add(key)
            live.append(key)
            operations.append(Operation(OperationKind.INSERT, key))
    return operations


def redaction_trace(initial: int, redactions: int,
                    key_space: Optional[int] = None,
                    seed: RandomLike = None) -> List[Operation]:
    """Bulk-load then redact: the secure-delete scenario from the introduction.

    First inserts ``initial`` random keys, then deletes ``redactions`` of
    them chosen at random — the situation where a history-dependent layout
    would leak how much was deleted and where in the key space it lived.
    """
    if redactions > initial:
        raise ConfigurationError("cannot redact more keys than were inserted")
    rng = make_rng(seed)
    key_space = key_space if key_space is not None else max(10 * initial, 1000)
    keys = _unique_keys(initial, key_space, rng)
    operations = [Operation(OperationKind.INSERT, key) for key in keys]
    for key in rng.sample(keys, redactions):
        operations.append(Operation(OperationKind.DELETE, key))
    return operations


# --------------------------------------------------------------------------- #
# Replay helpers
# --------------------------------------------------------------------------- #

def apply_to_ranked(structure, trace: Sequence[Operation],
                    value_of: Optional[Callable[[int], object]] = None) -> None:
    """Replay a trace against a rank-addressed structure (a PMA).

    Keys are kept in sorted order, so an insert of key ``k`` becomes
    ``insert(rank_of(k), k)`` and a delete becomes ``delete(rank_of(k))``.
    The rank bookkeeping is done with a shadow sorted list, which keeps the
    replay independent of the structure under test.
    """
    import bisect

    value_of = value_of or (lambda key: key)
    shadow: List[int] = []
    for operation in trace:
        if operation.kind is OperationKind.INSERT:
            rank = bisect.bisect_left(shadow, operation.key)
            structure.insert(rank, value_of(operation.key))
            shadow.insert(rank, operation.key)
        elif operation.kind is OperationKind.DELETE:
            rank = bisect.bisect_left(shadow, operation.key)
            if rank >= len(shadow) or shadow[rank] != operation.key:
                raise ConfigurationError("trace deletes a key that is not live: %r"
                                         % (operation.key,))
            structure.delete(rank)
            shadow.pop(rank)
        else:
            rank = bisect.bisect_left(shadow, operation.key)
            if rank < len(shadow) and shadow[rank] == operation.key:
                structure.get(rank)


def apply_to_dictionary(structure, trace: Sequence[Operation],
                        value_of: Optional[Callable[[int], object]] = None) -> None:
    """Replay a trace against a key-addressed dictionary (B-tree, skip list, …)."""
    value_of = value_of or (lambda key: key)
    for operation in trace:
        if operation.kind is OperationKind.INSERT:
            structure.insert(operation.key, value_of(operation.key))
        elif operation.kind is OperationKind.DELETE:
            structure.delete(operation.key)
        else:
            structure.contains(operation.key)
