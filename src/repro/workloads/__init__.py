"""Workload generators for the benchmarks and examples.

The paper's experiment inserts uniformly random numbers; the motivation
sections describe deletion-heavy redaction workloads and ingest patterns that
hammer one end of the key space.  This package generates all of those as
reproducible operation traces that can be replayed against either the
rank-addressed PMAs or the key-addressed dictionaries.
"""

from repro.workloads.generators import (
    Operation,
    OperationKind,
    random_insert_trace,
    sequential_insert_trace,
    reverse_sequential_insert_trace,
    clustered_insert_trace,
    insert_delete_trace,
    redaction_trace,
    apply_to_ranked,
    apply_to_dictionary,
)
from repro.workloads.patterns import (
    batch_redaction_trace,
    elastic_churn_trace,
    live_keys_of,
    search_mix_trace,
    sliding_window_trace,
    trough_trace,
    zipf_mixed_trace,
    zipfian_insert_trace,
)

__all__ = [
    "Operation",
    "OperationKind",
    "random_insert_trace",
    "sequential_insert_trace",
    "reverse_sequential_insert_trace",
    "clustered_insert_trace",
    "insert_delete_trace",
    "redaction_trace",
    "apply_to_ranked",
    "apply_to_dictionary",
    "zipfian_insert_trace",
    "sliding_window_trace",
    "trough_trace",
    "search_mix_trace",
    "batch_redaction_trace",
    "elastic_churn_trace",
    "zipf_mixed_trace",
    "live_keys_of",
]
