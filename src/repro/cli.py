"""Command-line interface: ``python -m repro <command>``.

The CLI packages the library's experiment and audit pipelines behind small
commands so the paper's measurements can be regenerated (at configurable
scale) without writing any code:

``figure2``
    Replay uniform random inserts on the HI PMA and the classic PMA and print
    the normalized-move series of Figure 2 (optionally to CSV).
``uniformity``
    Run the §4.3 balance-uniformity χ² experiment.
``audit``
    Run the weak-history-independence audit for a chosen structure over
    order-variant and detour histories.
``compare-io``
    Compare search/insert/range I/O costs of the external-memory dictionaries
    across a sweep of sizes.
``workload``
    Generate a reproducible operation trace and write it to CSV.
``rebalance``
    Grow and shrink a sharded store shard by shard and report how many keys
    each rebalancing step migrated (modulo vs. consistent-hash routing).
    ``--replication``/``--durability-dir`` run the store on the replicated
    durable backend; ``--durability-mode secure`` redacts deleted keys from
    every on-disk byte at barriers and checkpoints.
``recover``
    Cold-start a durable store from its durability directory (manifest +
    snapshots + op logs) and report keys, replicas and per-shard digests.
    ``--verify-erased KEYS`` then runs the byte-level forensics auditor
    against the directory and fails if any named key left a trace.
``snapshot``
    Build a structure, write its slot array to a (real or in-memory) disk
    image, and print the observer's occupancy profile.
``serve``
    Host a sharded store behind the TCP wire protocol; ``--telemetry``
    turns on request tracing and ``--metrics-interval N`` prints the
    unified telemetry snapshot every N seconds.
``stats``
    Fetch a running server's telemetry snapshot over the wire (text,
    JSON, or Prometheus exposition; ``--traces`` adds recent span trees).
``report``
    Aggregate ``benchmarks/results/*.json`` into a Markdown table.

Every command accepts ``--seed`` so its output is reproducible.
"""

from __future__ import annotations

import argparse
import hashlib
import os
import sys
from typing import Callable, Dict, List, Optional, Sequence

from repro.analysis.moves import normalized_moves_series
from repro.analysis.reporting import format_table
from repro.analysis.scaling import registry_io_series
from repro.analysis.tables import render_results_markdown, write_csv
from repro.api import (
    PARALLEL_MODES,
    DictionaryEngine,
    EngineConfig,
    audit_fingerprint_of,
    get_info,
    make_raw_structure,
    make_sharded_engine,
    registry_names,
    resolve,
)
from repro.api.routing import ROUTER_NAMES
from repro.errors import ConfigurationError
from repro.history.audit import audit_weak_history_independence
from repro.history.pairs import equivalent_histories, registry_builders
from repro.history.uniformity import balance_uniformity_experiment
from repro.storage import image_of
from repro.workloads import (
    batch_redaction_trace,
    elastic_churn_trace,
    random_insert_trace,
    sequential_insert_trace,
    sliding_window_trace,
    trough_trace,
    zipf_mixed_trace,
    zipfian_insert_trace,
)


# --------------------------------------------------------------------------- #
# Argument parsing
# --------------------------------------------------------------------------- #

#: Structures compared by ``compare-io`` when no ``--structure`` is given.
_DEFAULT_COMPARE = ("b-tree", "hi-skiplist", "b-skiplist", "b-treap")


def _rank_addressed_names() -> List[str]:
    """Registry names whose underlying structure is rank-addressed (the PMAs)."""
    return [name for name in registry_names()
            if get_info(name).rank_addressed]


def _check_router_flags(args: argparse.Namespace) -> None:
    """Reject ``--router``/``--vnodes`` silently doing nothing without shards."""
    if args.shards == 0 and (args.router != "modulo"
                             or args.vnodes is not None):
        raise ConfigurationError(
            "--router/--vnodes only apply to sharded runs; pass --shards N")


def _add_router_arguments(parser: argparse.ArgumentParser) -> None:
    """The shared ``--router`` / ``--vnodes`` flags of the sharded commands."""
    parser.add_argument("--router", choices=ROUTER_NAMES, default="modulo",
                        help="shard routing strategy: fixed modulo hashing "
                             "or a consistent-hash ring (elastic resizes "
                             "move only ~1/shards of the keys)")
    parser.add_argument("--vnodes", type=int, default=None,
                        help="virtual nodes per shard for --router "
                             "consistent (default 64)")


def _add_parallel_arguments(parser: argparse.ArgumentParser) -> None:
    """The ``--parallel`` / ``--max-workers`` flags of sharded dispatch."""
    parser.add_argument("--parallel", choices=PARALLEL_MODES, default="none",
                        help="shard dispatch backend: sequential, a thread "
                             "pool (GIL-bound), or long-lived worker "
                             "processes (one per shard, escapes the GIL)")
    parser.add_argument("--max-workers", type=int, default=None,
                        help="cap the thread/process pool (default: one "
                             "worker per shard)")


def build_parser() -> argparse.ArgumentParser:
    """The top-level argument parser (exposed for tests and docs)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="History-independent sparse tables and dictionaries "
                    "(PODS 2016 reproduction)")
    subparsers = parser.add_subparsers(dest="command", required=True)

    figure2 = subparsers.add_parser(
        "figure2", help="normalized element moves vs. inserts (Figure 2)")
    figure2.add_argument("--inserts", type=int, default=5000)
    figure2.add_argument("--checkpoints", type=int, default=10)
    figure2.add_argument("--seed", type=int, default=0)
    figure2.add_argument("--csv", type=str, default=None,
                         help="optional path for a CSV copy of the series")

    uniformity = subparsers.add_parser(
        "uniformity", help="balance-element uniformity χ² experiment (§4.3)")
    uniformity.add_argument("--keys", type=int, default=500)
    uniformity.add_argument("--trials", type=int, default=60)
    uniformity.add_argument("--seed", type=int, default=0)

    audit = subparsers.add_parser(
        "audit", help="weak-history-independence audit for one structure")
    audit.add_argument("--structure",
                       choices=registry_names(include_aliases=True),
                       default="hi-pma")
    audit.add_argument("--keys", type=int, default=32)
    audit.add_argument("--trials", type=int, default=100)
    audit.add_argument("--block", type=int, default=8,
                       help="DAM block size for block-structured dictionaries "
                            "(b-tree, b-treap, the skip lists); structures "
                            "whose layout does not depend on B ignore it")
    audit.add_argument("--shards", type=int, default=0,
                       help="audit the structure behind a hash-partitioned "
                            "sharded router with this many shards "
                            "(0 = unsharded)")
    _add_router_arguments(audit)
    audit.add_argument("--seed", type=int, default=0)

    compare = subparsers.add_parser(
        "compare-io", help="search/insert/range I/O comparison of dictionaries")
    compare.add_argument("--structure", action="append",
                         choices=registry_names(include_aliases=True),
                         default=None,
                         help="structure to compare (repeatable; default: %s)"
                              % ", ".join(_DEFAULT_COMPARE))
    compare.add_argument("--sizes", type=str, default="1000,4000")
    compare.add_argument("--block", type=int, default=64)
    compare.add_argument("--searches", type=int, default=100)
    compare.add_argument("--shards", type=int, default=0,
                         help="measure each structure behind a sharded "
                              "router with this many shards (0 = unsharded)")
    _add_router_arguments(compare)
    compare.add_argument("--seed", type=int, default=0)

    workload = subparsers.add_parser(
        "workload", help="generate a reproducible operation trace")
    workload.add_argument("--kind", choices=sorted(_WORKLOADS), default="random")
    workload.add_argument("--count", type=int, default=1000)
    workload.add_argument("--seed", type=int, default=0)
    workload.add_argument("--csv", type=str, default=None)
    workload.add_argument("--preview", type=int, default=10,
                          help="number of operations to print")

    attack = subparsers.add_parser(
        "attack", help="observer attack accuracy against one structure")
    attack.add_argument("--structure", choices=_rank_addressed_names(),
                        default="classic-pma")
    attack.add_argument("--kind", choices=["recency", "deletion"], default="recency")
    attack.add_argument("--keys", type=int, default=500)
    attack.add_argument("--trials", type=int, default=15)
    attack.add_argument("--regions", type=int, default=8)
    attack.add_argument("--seed", type=int, default=0)

    snapshot = subparsers.add_parser(
        "snapshot", help="write a structure's slot-level layout to a disk image")
    snapshot.add_argument("--structure",
                          choices=registry_names(include_aliases=True),
                          default="hi-pma")
    snapshot.add_argument("--keys", type=int, default=1000)
    snapshot.add_argument("--seed", type=int, default=0)
    snapshot.add_argument("--path", type=str, default=None,
                          help="file to write the image to (default: "
                               "in-memory); with --shards, a directory "
                               "receiving one image per shard + manifest")
    snapshot.add_argument("--shards", type=int, default=0,
                          help="shard the structure this many ways and "
                               "snapshot per shard (0 = unsharded)")
    _add_router_arguments(snapshot)
    snapshot.add_argument("--buckets", type=int, default=16)

    rebalance = subparsers.add_parser(
        "rebalance", help="grow/shrink a sharded store and report how many "
                          "keys each rebalancing step migrated")
    rebalance.add_argument("--structure",
                           choices=registry_names(include_aliases=True),
                           default="hi-skiplist",
                           help="inner structure behind the sharded router")
    rebalance.add_argument("--shards", type=int, default=3,
                           help="initial shard count")
    _add_router_arguments(rebalance)
    rebalance.add_argument("--keys", type=int, default=2000,
                           help="keys loaded before the first resize")
    rebalance.add_argument("--add", type=int, default=1,
                           help="shards to add, one rebalancing step each")
    rebalance.add_argument("--remove", type=int, default=0,
                           help="shards to retire (last position first) "
                                "after the adds")
    rebalance.add_argument("--block", type=int, default=64)
    rebalance.add_argument("--seed", type=int, default=0)
    _add_parallel_arguments(rebalance)
    rebalance.add_argument("--replication", type=int, default=1,
                           help="copies per shard (primary included); "
                                "values above 1 require --parallel process")
    rebalance.add_argument("--read-policy",
                           choices=("primary", "round-robin",
                                    "any-after-barrier"),
                           default="primary",
                           help="where a replicated store serves reads: the "
                                "primary only, round-robin over live "
                                "copies, or any copy that acked the last "
                                "barrier (requires --replication >= 2)")
    rebalance.add_argument("--durability-dir", type=str, default=None,
                           help="directory for per-shard op logs and "
                                "checkpointed snapshots (requires "
                                "--parallel process); a store written here "
                                "can be reopened with 'repro recover'")
    rebalance.add_argument("--durability-mode", choices=("logged", "secure"),
                           default="logged",
                           help="'logged' keeps the full mutation history in "
                                "the op logs until a checkpoint; 'secure' "
                                "redacts deleted keys from every on-disk "
                                "byte at the next barrier/checkpoint "
                                "(requires --durability-dir)")

    recover = subparsers.add_parser(
        "recover", help="cold-start a durable sharded store from its "
                        "durability directory and report what came back")
    recover.add_argument("--dir", type=str, required=True,
                         help="durability directory (op logs + snapshots + "
                              "manifest) written by a replicated engine")
    recover.add_argument("--replication", type=int, default=None,
                         help="override the manifest's replication factor")
    recover.add_argument("--read-policy",
                         choices=("primary", "round-robin",
                                  "any-after-barrier"),
                         default=None,
                         help="override the manifest's read policy")
    recover.add_argument("--max-workers", type=int, default=None)
    recover.add_argument("--verify-erased", type=str, default=None,
                         metavar="KEYS",
                         help="comma-separated integer keys that must have "
                              "no byte-level trace left in the durability "
                              "directory; runs the forensics auditor after "
                              "recovery and exits 1 if any trace is found")

    serve = subparsers.add_parser(
        "serve", help="host a sharded store behind the TCP wire protocol "
                      "(see repro.net); drains gracefully on SIGINT/SIGTERM")
    serve.add_argument("--structure",
                       choices=registry_names(include_aliases=True),
                       default="hi-skiplist",
                       help="inner structure behind the sharded router")
    serve.add_argument("--shards", type=int, default=4)
    serve.add_argument("--block", type=int, default=64)
    serve.add_argument("--seed", type=int, default=0)
    _add_router_arguments(serve)
    _add_parallel_arguments(serve)
    serve.add_argument("--replication", type=int, default=1,
                       help="copies per shard (primary included); values "
                            "above 1 require --parallel process")
    serve.add_argument("--read-policy",
                       choices=("primary", "round-robin",
                                "any-after-barrier"),
                       default="primary",
                       help="read routing over replica copies (see "
                            "'repro rebalance --help'); clients learn the "
                            "policy from the handshake")
    serve.add_argument("--durability-dir", type=str, default=None,
                       help="per-namespace durable state goes into "
                            "subdirectories of this directory (requires "
                            "--parallel process)")
    serve.add_argument("--durability-mode", choices=("logged", "secure"),
                       default="logged")
    serve.add_argument("--host", type=str, default="127.0.0.1")
    serve.add_argument("--port", type=int, default=0,
                       help="TCP port (default 0: pick a free port and "
                            "print it)")
    serve.add_argument("--max-inflight", type=int, default=32,
                       help="per-connection in-flight request budget; "
                            "requests over budget are shed with a BUSY "
                            "reply instead of queueing without bound")
    serve.add_argument("--telemetry", action="store_true",
                       help="enable request tracing on the hosted engines "
                            "(spans cross the worker pipe and the wire; "
                            "same effect as REPRO_TRACE=1 for this store)")
    serve.add_argument("--metrics-interval", type=float, default=0.0,
                       help="print the default namespace's telemetry "
                            "snapshot every N seconds (0 disables)")

    stats = subparsers.add_parser(
        "stats", help="fetch a running server's unified telemetry snapshot "
                      "over the wire (counters, latency histograms, plane/"
                      "erasure/replica-read stats; optionally span trees)")
    stats.add_argument("--host", type=str, default="127.0.0.1")
    stats.add_argument("--port", type=int, required=True,
                       help="port of a running 'repro serve'")
    stats.add_argument("--namespace", type=str, default="default")
    stats.add_argument("--format", choices=("text", "json", "prom"),
                       default="text",
                       help="text: aligned name/value lines; json: one "
                            "sorted object; prom: Prometheus text "
                            "exposition")
    stats.add_argument("--traces", action="store_true",
                       help="also fetch and render the server's recent "
                            "span trees and slow-op log")

    report = subparsers.add_parser(
        "report", help="aggregate benchmark results into a Markdown table")
    report.add_argument("--results", type=str, default="benchmarks/results")

    return parser


# --------------------------------------------------------------------------- #
# Commands
# --------------------------------------------------------------------------- #

def cmd_figure2(args: argparse.Namespace, out) -> int:
    trace = random_insert_trace(args.inserts, seed=args.seed)
    hi_series = normalized_moves_series(
        make_raw_structure("hi-pma", seed=args.seed),
        trace, checkpoints=args.checkpoints)
    classic_series = normalized_moves_series(
        make_raw_structure("classic-pma"), trace,
        checkpoints=args.checkpoints)
    rows = []
    for hi_sample, classic_sample in zip(hi_series, classic_series):
        rows.append([hi_sample.inserts,
                     "%.4f" % hi_sample.normalized_moves,
                     "%.4f" % classic_sample.normalized_moves,
                     "%.2f" % hi_sample.space_per_element])
    headers = ["inserts", "HI PMA moves/(N log^2 N)",
               "classic PMA moves/(N log^2 N)", "HI slots/N"]
    print(format_table(rows, headers=headers), file=out)
    if args.csv:
        write_csv(args.csv, rows, headers=headers)
        print("wrote %s" % args.csv, file=out)
    return 0


def cmd_uniformity(args: argparse.Namespace, out) -> int:
    result = balance_uniformity_experiment(num_keys=args.keys,
                                           trials=args.trials,
                                           seed=args.seed)
    print("groups tested      : %d" % result.num_groups, file=out)
    print("overall p-value    : %.4f" % result.overall_p_value, file=out)
    print("uniformity verdict : %s"
          % ("consistent with uniform" if result.passes() else "REJECTED"),
          file=out)
    return 0 if result.passes() else 1


def cmd_audit(args: argparse.Namespace, out) -> int:
    if args.shards < 0:
        raise ConfigurationError("--shards must be non-negative, got %d"
                                 % args.shards)
    _check_router_flags(args)
    keys = list(range(1, args.keys + 1))
    detours = [args.keys + 10, args.keys + 20]
    histories = equivalent_histories(keys, detour_keys=detours, shuffles=2,
                                     seed=args.seed)
    if args.shards > 0:
        label = "sharded[%d]:%s" % (args.shards, resolve(args.structure))
        builders = registry_builders("sharded", histories,
                                     block_size=args.block,
                                     shards=args.shards,
                                     inner=resolve(args.structure),
                                     router=args.router, vnodes=args.vnodes)
    else:
        label = args.structure
        builders = registry_builders(args.structure, histories,
                                     block_size=args.block)
    result = audit_weak_history_independence(
        builders, trials=args.trials, fingerprint_of=audit_fingerprint_of)
    print("structure             : %s" % label, file=out)
    print("histories compared    : %d" % result.num_sequences, file=out)
    print("trials per history    : %d" % result.trials_per_sequence, file=out)
    print("distinct fingerprints : %d" % result.distinct_fingerprints, file=out)
    print("deterministic mismatch: %s" % result.deterministic_mismatch, file=out)
    print("homogeneity p-value   : %.4f" % result.p_value, file=out)
    verdict = "PASS (no evidence of history dependence)" if result.passes() \
        else "FAIL (representation depends on history)"
    print("verdict               : %s" % verdict, file=out)
    return 0 if result.passes() else 1


def cmd_compare_io(args: argparse.Namespace, out) -> int:
    try:
        sizes = [int(part) for part in args.sizes.split(",") if part.strip()]
    except ValueError as error:
        raise ConfigurationError("--sizes must be a comma-separated list of "
                                 "integers, got %r" % (args.sizes,)) from error
    if not sizes:
        raise ConfigurationError("--sizes must name at least one size")
    requested = args.structure or list(_DEFAULT_COMPARE)
    names: List[str] = []
    for name in requested:
        canonical = resolve(name)
        if canonical not in names:
            names.append(canonical)
    if args.shards < 0:
        raise ConfigurationError("--shards must be non-negative, got %d"
                                 % args.shards)
    _check_router_flags(args)
    samples = registry_io_series(names, sizes, block_size=args.block,
                                 searches=args.searches, seed=args.seed,
                                 shards=args.shards, router=args.router,
                                 vnodes=args.vnodes)
    rows = [[sample.structure, sample.num_keys,
             "%.2f" % sample.search_ios, "%.2f" % sample.insert_ios,
             "%.1f" % sample.range_ios]
            for sample in samples]
    print(format_table(rows, headers=["structure", "N", "search I/Os",
                                      "insert I/Os", "range I/Os"]), file=out)
    return 0


_WORKLOADS: Dict[str, Callable[[argparse.Namespace], List[object]]] = {
    "random": lambda args: random_insert_trace(args.count, seed=args.seed),
    "sequential": lambda args: sequential_insert_trace(args.count),
    "zipfian": lambda args: zipfian_insert_trace(args.count, seed=args.seed),
    "sliding-window": lambda args: sliding_window_trace(
        args.count, window=max(1, args.count // 10)),
    "trough": lambda args: trough_trace(args.count, seed=args.seed),
    "redaction": lambda args: batch_redaction_trace(max(1, args.count), seed=args.seed),
    "zipf-mixed": lambda args: zipf_mixed_trace(args.count, seed=args.seed),
    "elastic": lambda args: elastic_churn_trace(args.count, seed=args.seed),
}


def cmd_workload(args: argparse.Namespace, out) -> int:
    trace = _WORKLOADS[args.kind](args)
    print("generated %d operations (%s)" % (len(trace), args.kind), file=out)
    for operation in trace[:max(0, args.preview)]:
        print("  %s" % operation, file=out)
    if len(trace) > args.preview > 0:
        print("  ... (%d more)" % (len(trace) - args.preview), file=out)
    if args.csv:
        rows = [[operation.kind.value, operation.key] for operation in trace]
        write_csv(args.csv, rows, headers=["operation", "key"])
        print("wrote %s" % args.csv, file=out)
    return 0


def cmd_attack(args: argparse.Namespace, out) -> int:
    from repro.history.observer import (
        DeletionAttack,
        RecencyAttack,
        deletion_victim_builder,
        evaluate_attack,
        recency_victim_builder,
    )

    factory = lambda seed: make_raw_structure(args.structure, seed=seed)
    if args.kind == "recency":
        attack = RecencyAttack(regions=args.regions)
        builder = recency_victim_builder(factory, base_keys=args.keys,
                                         burst_keys=max(10, args.keys // 6),
                                         regions=args.regions)
    else:
        attack = DeletionAttack(regions=args.regions)
        builder = deletion_victim_builder(factory, initial_keys=args.keys,
                                          regions=args.regions)
    report = evaluate_attack(attack, builder, trials=args.trials, seed=args.seed)
    print("victim structure : %s" % args.structure, file=out)
    print("attack           : %s (%d regions)" % (args.kind, args.regions), file=out)
    print("trials           : %d" % report.trials, file=out)
    print("accuracy         : %.2f (chance %.3f)" % (report.accuracy, report.chance),
          file=out)
    print("advantage        : %.2f" % report.advantage, file=out)
    verdict = "layout leaks the secret" if report.advantage > report.chance \
        else "observer learns nothing useful"
    print("verdict          : %s" % verdict, file=out)
    return 0


def cmd_snapshot(args: argparse.Namespace, out) -> int:
    if args.shards < 0:
        raise ConfigurationError("--shards must be non-negative, got %d"
                                 % args.shards)
    _check_router_flags(args)
    if args.shards > 0:
        engine = DictionaryEngine.create("sharded", seed=args.seed,
                                         shards=args.shards,
                                         inner=resolve(args.structure),
                                         router=args.router,
                                         vnodes=args.vnodes)
    else:
        engine = DictionaryEngine.create(args.structure, seed=args.seed)
    engine.build_from_trace(random_insert_trace(args.keys, seed=args.seed))
    if args.shards > 0:
        print("structure        : sharded[%d]:%s"
              % (args.shards, resolve(args.structure)), file=out)
        print("shard sizes      : %s" % (engine.shard_sizes(),), file=out)
        if args.path:
            manifest = engine.snapshot_shards(args.path)
            for entry in manifest["shards"]:
                print("  %-16s %6d slots  %4d pages"
                      % (entry["file"], entry["num_slots"],
                         entry["num_pages"]), file=out)
            print("manifest written to %s"
                  % os.path.join(args.path, engine.MANIFEST_NAME), file=out)
            return 0
    paged_file, metadata = engine.snapshot(args.path)
    image = image_of(paged_file, metadata)
    if args.shards <= 0:
        print("structure        : %s" % metadata.kind, file=out)
    print("slots            : %d" % metadata.num_slots, file=out)
    print("pages            : %d (%d bytes)"
          % (len(image), image.size_in_bytes), file=out)
    print("image fingerprint: %s" % image.fingerprint()[:16], file=out)
    profile = image.occupancy_profile(buckets=args.buckets)
    print("occupancy profile:", file=out)
    for index, density in enumerate(profile):
        bar = "#" * int(round(40 * density))
        print("  region %2d  %5.1f%%  %s" % (index, 100 * density, bar), file=out)
    if args.path:
        print("image written to %s" % args.path, file=out)
    return 0


def _engine_config_from_args(args: argparse.Namespace) -> EngineConfig:
    """The :class:`EngineConfig` described by the shared sharded flags."""
    from repro.api.routing import make_router

    inner = resolve(args.structure)
    if inner == "sharded":
        raise ConfigurationError(
            "--structure names the inner structure; it cannot be 'sharded'")
    return EngineConfig(
        inner=inner, shards=args.shards, block_size=args.block,
        seed=args.seed,
        router=make_router(args.router, vnodes=args.vnodes).spec(),
        parallel=args.parallel, max_workers=args.max_workers,
        replication=args.replication,
        read_policy=getattr(args, "read_policy", "primary"),
        durability_dir=args.durability_dir,
        durability_mode=args.durability_mode,
        telemetry=getattr(args, "telemetry", False)).validate()


def cmd_rebalance(args: argparse.Namespace, out) -> int:
    if args.shards < 1:
        raise ConfigurationError("--shards must be at least 1, got %d"
                                 % args.shards)
    if args.add < 0 or args.remove < 0:
        raise ConfigurationError("--add and --remove must be non-negative")
    if args.remove >= args.shards + args.add:
        raise ConfigurationError(
            "cannot remove %d shard(s) from a store that only ever has %d"
            % (args.remove, args.shards + args.add))
    config = _engine_config_from_args(args)
    inner = config.inner
    engine = make_sharded_engine(config=config)
    try:
        engine.build_from_trace(random_insert_trace(args.keys, seed=args.seed))
        print("store   : %d x %s (router=%s%s, parallel=%s, replication=%d)"
              % (args.shards, inner, args.router,
                 "" if args.vnodes is None else ", vnodes=%d" % args.vnodes,
                 args.parallel, args.replication),
              file=out)
        print("keys    : %d" % len(engine), file=out)
        reports = []
        for _step in range(args.add):
            reports.append(("add", engine.add_shard()))
        for _step in range(args.remove):
            reports.append(("remove",
                            engine.remove_shard(engine.num_shards - 1)))
        rows = []
        for action, report in reports:
            rows.append([
                action,
                "%d -> %d" % (report.old_shards, report.new_shards),
                report.moved_keys,
                "%.3f" % report.moved_fraction,
                "%.3f" % report.ideal_fraction,
            ])
        print(format_table(rows, headers=["step", "shards", "keys moved",
                                          "moved frac", "ideal frac"]),
              file=out)
        print("final shard sizes: %s" % (engine.shard_sizes(),), file=out)
        engine.check()
        if args.durability_dir:
            engine.checkpoint()
            print("durable state checkpointed to %s (mode=%s; reopen with "
                  "'repro recover --dir %s')"
                  % (args.durability_dir, args.durability_mode,
                     args.durability_dir), file=out)
    finally:
        engine.close()
    return 0


def cmd_recover(args: argparse.Namespace, out) -> int:
    from repro.replication import open_durable_engine

    with open_durable_engine(args.dir, replication=args.replication,
                             read_policy=args.read_policy,
                             max_workers=args.max_workers) as engine:
        engine.check()
        print("recovered store : %d x shard (replication=%d) from %s"
              % (engine.num_shards, engine.replication, args.dir), file=out)
        print("durability mode : %s" % engine.durability_mode, file=out)
        print("read policy     : %s" % engine.read_policy, file=out)
        config = getattr(engine, "engine_config", None)
        if isinstance(config, EngineConfig):
            print("engine config   : inner=%s shards=%d seed=%s router=%s"
                  % (config.inner, config.shards, config.seed,
                     config.router.get("name")), file=out)
        print("keys            : %d" % len(engine), file=out)
        print("shard sizes     : %s" % (engine.shard_sizes(),), file=out)
        print("live replicas   : %s" % (engine.replica_counts(),), file=out)
        for index, shard in enumerate(engine.structure.shards):
            # The full layout observable (audit fingerprint + slot array),
            # hashed: comparable across runs, machines, and recoveries.
            observable = (shard.audit_fingerprint(),
                          tuple(shard.snapshot_slots()))
            digest = hashlib.sha256(
                repr(observable).encode("utf-8")).hexdigest()[:16]
            print("  shard %2d digest: %s" % (index, digest), file=out)
        print("integrity       : check() passed", file=out)
    if args.verify_erased is not None:
        from repro.history.forensics import audit_durability_dir

        try:
            keys = [int(part) for part in args.verify_erased.split(",")
                    if part.strip()]
        except ValueError as error:
            raise ConfigurationError(
                "--verify-erased takes comma-separated integer keys, got %r"
                % (args.verify_erased,)) from error
        if not keys:
            raise ConfigurationError(
                "--verify-erased needs at least one key")
        report = audit_durability_dir(args.dir, keys, payload_size=64)
        if report.clean:
            print("erasure audit   : clean — no trace of %d key(s) in "
                  "%d file(s), %d bytes"
                  % (len(keys), len(report.files_scanned),
                     report.bytes_scanned), file=out)
            return 0
        print("erasure audit   : TRACES FOUND — %d finding(s) across %s"
              % (len(report.findings),
                 sorted({finding.file for finding in report.findings})),
              file=out)
        return 1
    return 0


def cmd_serve(args: argparse.Namespace, out) -> int:
    import asyncio
    import json
    import signal

    from repro.net.server import ReproServer

    if args.metrics_interval < 0:
        raise ConfigurationError(
            "--metrics-interval must be non-negative, got %r"
            % (args.metrics_interval,))
    config = _engine_config_from_args(args)
    server = ReproServer(config, host=args.host, port=args.port,
                         max_inflight=args.max_inflight)

    async def dump_metrics() -> None:
        while True:
            await asyncio.sleep(args.metrics_interval)
            snapshot = await server.telemetry_snapshot()
            print("metrics: %s" % json.dumps(snapshot, sort_keys=True),
                  file=out)
            out.flush()

    async def run() -> None:
        await server.start()
        print("listening on %s:%d" % (server.host, server.port), file=out)
        out.flush()
        loop = asyncio.get_running_loop()
        drained = loop.create_future()

        def request_drain() -> None:
            if not drained.done():
                drained.set_result(None)

        for signum in (signal.SIGINT, signal.SIGTERM):
            try:
                loop.add_signal_handler(signum, request_drain)
            except (NotImplementedError, RuntimeError):
                pass
        ticker = None
        if args.metrics_interval > 0:
            ticker = asyncio.ensure_future(dump_metrics())
        try:
            await drained
        finally:
            if ticker is not None:
                ticker.cancel()
        report = await server.drain()
        print("drained %d namespace(s); bye" % len(report), file=out)
        out.flush()

    asyncio.run(run())
    return 0


def cmd_stats(args: argparse.Namespace, out) -> int:
    import json

    from repro.net.client import ReproClient
    from repro.obs import render_trace, to_prometheus

    with ReproClient(args.host, args.port,
                     namespace=args.namespace) as client:
        snapshot = client.stats()
        if args.traces:
            bundles = client.traces()
    if args.format == "json":
        print(json.dumps(snapshot, indent=2, sort_keys=True), file=out)
    elif args.format == "prom":
        out.write(to_prometheus(snapshot))
    else:
        for name in sorted(snapshot):
            print("%-44s %s" % (name, snapshot[name]), file=out)
    if args.traces:
        print("recent traces (%d):" % len(bundles["traces"]), file=out)
        for entry in bundles["traces"]:
            print(render_trace(entry), file=out)
        if bundles["slow"]:
            print("slow ops (%d):" % len(bundles["slow"]), file=out)
            for entry in bundles["slow"]:
                print(render_trace(entry), file=out)
    return 0


def cmd_report(args: argparse.Namespace, out) -> int:
    print(render_results_markdown(args.results), file=out)
    return 0


_COMMANDS = {
    "figure2": cmd_figure2,
    "uniformity": cmd_uniformity,
    "audit": cmd_audit,
    "compare-io": cmd_compare_io,
    "workload": cmd_workload,
    "attack": cmd_attack,
    "snapshot": cmd_snapshot,
    "rebalance": cmd_rebalance,
    "recover": cmd_recover,
    "serve": cmd_serve,
    "stats": cmd_stats,
    "report": cmd_report,
}


def main(argv: Optional[Sequence[str]] = None, out=None) -> int:
    """Entry point; returns a process exit code."""
    out = out if out is not None else sys.stdout
    parser = build_parser()
    args = parser.parse_args(argv)
    command = _COMMANDS[args.command]
    try:
        return command(args, out)
    except ConfigurationError as error:
        print("error: %s" % error, file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover - exercised via __main__.py
    sys.exit(main())
