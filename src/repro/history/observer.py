"""Quantified observer attacks: how much does a layout actually leak?

The audit in :mod:`repro.history.audit` answers a yes/no question (are the
representation distributions identical?).  This module asks the operational
question the paper's motivation cares about: given one look at the layout,
how *accurately* can an observer recover a secret about the history?  Two
concrete attacks are implemented, each with an evaluation harness that
reports attack accuracy against chance:

* :class:`RecencyAttack` — the workload inserts most keys uniformly but
  finishes with a burst into one secret region of the key space.  The
  attacker sees only the slot array and guesses the secret region (in a
  classic PMA the freshly hammered region is locally denser; in the HI PMA
  it is not).
* :class:`DeletionAttack` — the workload bulk loads keys and then redacts one
  secret contiguous region.  The attacker guesses where the redaction
  happened (in a classic PMA the redacted region is locally sparser).

Accuracy near ``1/regions`` means the observer learns nothing; accuracy near
1 means the layout gives the secret away.  ``benchmarks/bench_observer.py``
runs both attacks against the classic and HI PMAs.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass
from typing import Callable, List, Sequence, Tuple

from repro._rng import RandomLike, make_rng
from repro.errors import ConfigurationError
from repro.history.forensics import occupancy_profile

#: A builder returns (slot_array, secret_region_index) for one trial.
TrialBuilder = Callable[[int], Tuple[Sequence[object], int]]


@dataclass(frozen=True)
class AttackReport:
    """Outcome of evaluating one attack over many trials."""

    trials: int
    regions: int
    correct: int

    @property
    def accuracy(self) -> float:
        """Fraction of trials in which the attacker guessed the secret region."""
        return self.correct / self.trials if self.trials else 0.0

    @property
    def chance(self) -> float:
        """Accuracy of blind guessing."""
        return 1.0 / self.regions if self.regions else 0.0

    @property
    def advantage(self) -> float:
        """Accuracy above chance (0 means the observer learned nothing)."""
        return max(0.0, self.accuracy - self.chance)


class RecencyAttack:
    """Guess which key region received the most recent insertion burst.

    The attacker computes the occupancy profile of the slot array and picks
    the densest region: recent inserts that have not yet been smoothed out by
    global rebalances show up as a local density bump (the "sand pile" from
    the paper's introduction).
    """

    def __init__(self, regions: int = 8) -> None:
        if regions < 2:
            raise ConfigurationError("need at least two regions to guess among")
        self.regions = regions

    def guess(self, slots: Sequence[object]) -> int:
        """The attacker's guess: index of the densest region."""
        profile = occupancy_profile(slots, buckets=self.regions)
        return max(range(self.regions), key=lambda index: profile[index])


class DeletionAttack:
    """Guess which key region was redacted.

    The attacker picks the *sparsest* non-empty region of the occupancy
    profile: deletions that have not been smoothed away leave a local
    depression.
    """

    def __init__(self, regions: int = 8) -> None:
        if regions < 2:
            raise ConfigurationError("need at least two regions to guess among")
        self.regions = regions

    def guess(self, slots: Sequence[object]) -> int:
        """The attacker's guess: index of the sparsest region."""
        profile = occupancy_profile(slots, buckets=self.regions)
        return min(range(self.regions), key=lambda index: profile[index])


def evaluate_attack(attack, builder: TrialBuilder, trials: int = 50,
                    seed: RandomLike = None) -> AttackReport:
    """Run ``trials`` independent trials of an attack and report its accuracy.

    ``builder(trial_seed)`` must construct one victim layout with a freshly
    chosen secret and return ``(slot_array, secret_region_index)``.  The
    attack's :meth:`guess` is then compared against the secret.
    """
    if trials < 1:
        raise ConfigurationError("trials must be positive")
    rng = make_rng(seed)
    correct = 0
    for _ in range(trials):
        slots, secret = builder(rng.getrandbits(64))
        if not 0 <= secret < attack.regions:
            raise ConfigurationError("builder returned secret region %r outside "
                                     "0..%d" % (secret, attack.regions - 1))
        if attack.guess(slots) == secret:
            correct += 1
    return AttackReport(trials=trials, regions=attack.regions, correct=correct)


# --------------------------------------------------------------------------- #
# Standard victim builders
# --------------------------------------------------------------------------- #

def recency_victim_builder(structure_factory: Callable[[int], object],
                           base_keys: int = 800,
                           burst_keys: int = 120,
                           regions: int = 8) -> TrialBuilder:
    """Builder for the recency attack.

    The victim inserts ``base_keys`` uniform keys, then a burst of
    ``burst_keys`` keys confined to one randomly chosen region of the key
    space (the secret).  Keys are inserted in rank order through the
    rank-addressed API.
    """
    key_space = 10 * (base_keys + burst_keys)
    region_width = key_space // regions

    def build(trial_seed: int) -> Tuple[Sequence[object], int]:
        rng = make_rng(trial_seed)
        structure = structure_factory(rng.getrandbits(64))
        secret = rng.randrange(regions)
        base = rng.sample(range(key_space), base_keys)
        base_set = set(base)
        burst_low = secret * region_width
        burst_pool = [key for key in range(burst_low, burst_low + region_width)
                      if key not in base_set]
        burst = rng.sample(burst_pool, burst_keys)
        shadow: List[int] = []
        for key in base + burst:
            rank = bisect.bisect_left(shadow, key)
            structure.insert(rank, key)
            shadow.insert(rank, key)
        return structure.slots(), secret

    return build


def deletion_victim_builder(structure_factory: Callable[[int], object],
                            initial_keys: int = 900,
                            regions: int = 8) -> TrialBuilder:
    """Builder for the deletion attack.

    The victim bulk-inserts ``initial_keys`` uniform keys (in random order)
    and then deletes every key falling in one randomly chosen region of the
    key space (the secret).
    """
    key_space = 10 * initial_keys
    region_width = key_space // regions

    def build(trial_seed: int) -> Tuple[Sequence[object], int]:
        rng = make_rng(trial_seed)
        structure = structure_factory(rng.getrandbits(64))
        secret = rng.randrange(regions)
        keys = rng.sample(range(key_space), initial_keys)
        shadow: List[int] = []
        for key in keys:
            rank = bisect.bisect_left(shadow, key)
            structure.insert(rank, key)
            shadow.insert(rank, key)
        low = secret * region_width
        high = low + region_width
        for key in [key for key in shadow if low <= key < high]:
            rank = bisect.bisect_left(shadow, key)
            structure.delete(rank)
            shadow.pop(rank)
        return structure.slots(), secret

    return build
