"""The weak-history-independence audit.

Definition 4 (weak history independence) quantifies over pairs of operation
sequences that reach the same state: their memory-representation
distributions must coincide.  The audit here makes that operational:

1. The caller supplies several *builders* — callables that construct a fresh
   structure, apply one particular operation sequence, and return the
   structure.  All builders must reach the same logical state.
2. Each builder is run many times with fresh randomness; each resulting
   memory representation is fingerprinted.
3. A χ² homogeneity test compares the fingerprint distributions.  For a WHI
   structure the p-value is uniform (so it is rarely tiny); for a
   history-dependent structure (classic PMA, B-tree) the distributions are
   typically disjoint and the p-value collapses to zero — or, more commonly,
   the representations are deterministic per sequence and simply unequal,
   which the audit reports via ``deterministic_mismatch``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional, Sequence

from repro.errors import ConfigurationError
from repro.history.representation import representation_fingerprint
from repro.history.statistics import chi_square_homogeneity

StructureBuilder = Callable[[], object]
StateExtractor = Callable[[object], object]
FingerprintExtractor = Callable[[object], object]


def _default_state(structure: object) -> object:
    """Logical state of a structure: its contents via the public API."""
    if hasattr(structure, "items"):
        return tuple(structure.items())
    if hasattr(structure, "to_list"):
        return tuple(structure.to_list())
    return tuple(iter(structure))


def sample_fingerprints(builder: StructureBuilder, trials: int,
                        fingerprint_of: Optional[FingerprintExtractor] = None
                        ) -> List[object]:
    """Build ``trials`` fresh instances and fingerprint each memory representation.

    By default the fingerprint is a hash of the complete memory
    representation.  A custom ``fingerprint_of`` can project the
    representation onto a coarser feature (the array capacity, the slot
    count, a specific range's occupancy, …), which gives the χ² test far
    more statistical power when full representations are almost never
    repeated across trials.
    """
    if trials <= 0:
        raise ConfigurationError("trials must be positive")
    fingerprints: List[object] = []
    for _ in range(trials):
        structure = builder()
        if fingerprint_of is not None:
            fingerprints.append(fingerprint_of(structure))
        else:
            fingerprints.append(
                representation_fingerprint(structure.memory_representation()))
    return fingerprints


@dataclass
class AuditResult:
    """Outcome of a weak-history-independence audit."""

    p_value: float
    statistic: float
    degrees_of_freedom: int
    trials_per_sequence: int
    num_sequences: int
    deterministic_mismatch: bool
    distinct_fingerprints: int
    samples: List[List[str]] = field(repr=False, default_factory=list)

    def passes(self, significance: float = 0.001) -> bool:
        """Whether the audit found no evidence of history dependence.

        The audit *fails* when either the representation is deterministic per
        sequence but differs across sequences (the classic-PMA case), or the
        homogeneity test rejects at the given significance level.
        """
        if self.deterministic_mismatch:
            return False
        return self.p_value >= significance


def audit_weak_history_independence(
        builders: Sequence[StructureBuilder],
        trials: int = 200,
        state_of: Optional[StateExtractor] = None,
        fingerprint_of: Optional[FingerprintExtractor] = None) -> AuditResult:
    """Audit that several operation sequences induce the same representation distribution.

    ``builders`` must each construct a structure holding the same logical
    contents; this is verified with ``state_of`` (defaults to the structure's
    item list) before any statistics are computed, so a mistake in the test
    harness is reported as an error rather than a spurious failure.
    """
    if len(builders) < 2:
        raise ConfigurationError("need at least two operation sequences to compare")
    state_of = state_of or _default_state
    reference_state = None
    samples: List[List[str]] = []
    for builder in builders:
        probe = builder()
        state = state_of(probe)
        if reference_state is None:
            reference_state = state
        elif state != reference_state:
            raise ConfigurationError(
                "builders reach different logical states; the audit compares "
                "representation distributions only for identical states")
        samples.append(sample_fingerprints(builder, trials,
                                           fingerprint_of=fingerprint_of))
    statistic, p_value, dof = chi_square_homogeneity(samples)
    distinct = len({fingerprint for sample in samples for fingerprint in sample})
    per_sequence_distinct = [len(set(sample)) for sample in samples]
    deterministic = all(count == 1 for count in per_sequence_distinct)
    deterministic_mismatch = deterministic and distinct > 1
    return AuditResult(
        p_value=p_value,
        statistic=statistic,
        degrees_of_freedom=dof,
        trials_per_sequence=trials,
        num_sequences=len(builders),
        deterministic_mismatch=deterministic_mismatch,
        distinct_fingerprints=distinct,
        samples=samples,
    )
