"""Canonicalising and fingerprinting memory representations.

Every structure in this library exposes ``memory_representation()``: the full
physical layout an observer would see on a stolen disk — slot arrays with
their gaps, auxiliary trees in layout order, capacities, and so on.  The
audit machinery needs two things from it:

* a *canonical form* that is hashable and insensitive to incidental Python
  details (lists vs. tuples, dict ordering), and
* a short, stable *fingerprint* so that thousands of sampled representations
  can be tallied into a contingency table.
"""

from __future__ import annotations

import hashlib
from typing import Iterable, Tuple


def canonical_representation(representation: object) -> object:
    """Recursively convert a memory representation into hashable tuples."""
    if isinstance(representation, (list, tuple)):
        return tuple(canonical_representation(item) for item in representation)
    if isinstance(representation, dict):
        return tuple(sorted(
            (canonical_representation(key), canonical_representation(value))
            for key, value in representation.items()
        ))
    if isinstance(representation, set):
        return tuple(sorted(canonical_representation(item)
                            for item in representation))
    return representation


def representation_fingerprint(representation: object) -> str:
    """A short stable fingerprint of a memory representation.

    The representation is canonicalised, rendered with ``repr`` (which is
    deterministic for the plain values stored by the library's structures)
    and hashed with SHA-256; the first 16 hex digits are returned.
    """
    canonical = canonical_representation(representation)
    digest = hashlib.sha256(repr(canonical).encode("utf-8")).hexdigest()
    return digest[:16]


def fingerprints(representations: Iterable[object]) -> Tuple[str, ...]:
    """Fingerprints of several representations, in order."""
    return tuple(representation_fingerprint(rep) for rep in representations)
