"""History-independence auditing.

Weak history independence (Definition 4) says: for any two operation
sequences that bring a structure to the same logical state, the
*distributions* of memory representations must be identical.  That is a
statement about distributions, so it is audited statistically:

* :mod:`repro.history.representation` canonicalises and fingerprints the
  memory representation that structures expose via
  ``memory_representation()``.
* :mod:`repro.history.statistics` provides the χ² machinery (goodness of fit
  against a known distribution, and homogeneity across samples).
* :mod:`repro.history.audit` builds the audit itself: run several operation
  sequences that reach the same state many times each with fresh randomness,
  and test whether the resulting representation distributions are
  indistinguishable.  The same audit applied to the *classic* PMA or a
  B-tree fails loudly, which is the expected control.
* :mod:`repro.history.uniformity` reproduces the paper's §4.3 experiment:
  balance elements must sit uniformly inside their candidate sets.
"""

from repro.history.representation import canonical_representation, representation_fingerprint
from repro.history.statistics import (
    chi_square_statistic,
    chi_square_gof_pvalue,
    chi_square_homogeneity,
    uniformity_pvalue,
)
from repro.history.audit import AuditResult, audit_weak_history_independence, sample_fingerprints
from repro.history.uniformity import BalanceUniformityResult, balance_uniformity_experiment
from repro.history.forensics import (
    detect_density_anomaly,
    occupancy_profile,
    redaction_signal,
)
from repro.history.pairs import (
    detour_variant,
    dictionary_builders,
    equivalent_histories,
    insertion_order_variants,
    ranked_builders,
    verify_equivalent,
)
from repro.history.observer import (
    AttackReport,
    DeletionAttack,
    RecencyAttack,
    deletion_victim_builder,
    evaluate_attack,
    recency_victim_builder,
)

__all__ = [
    "AttackReport",
    "RecencyAttack",
    "DeletionAttack",
    "evaluate_attack",
    "recency_victim_builder",
    "deletion_victim_builder",
    "insertion_order_variants",
    "detour_variant",
    "equivalent_histories",
    "verify_equivalent",
    "dictionary_builders",
    "ranked_builders",
    "canonical_representation",
    "representation_fingerprint",
    "chi_square_statistic",
    "chi_square_gof_pvalue",
    "chi_square_homogeneity",
    "uniformity_pvalue",
    "AuditResult",
    "audit_weak_history_independence",
    "sample_fingerprints",
    "BalanceUniformityResult",
    "balance_uniformity_experiment",
    "occupancy_profile",
    "detect_density_anomaly",
    "redaction_signal",
]
