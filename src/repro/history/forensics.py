"""Forensic heuristics an observer could run against a stolen layout.

History independence is motivated by what an *observer* of the raw disk can
infer.  This module implements the simple, practical inference heuristics the
paper's motivation sections allude to, so that examples and tests can show
them succeeding against history-dependent layouts and failing against the
history-independent ones:

* :func:`occupancy_profile` — the local-density fingerprint of a slot array.
  In a classic PMA, regions that absorbed many recent inserts are denser and
  regions that suffered deletions are sparser, so the profile betrays *where*
  in the key space activity happened.
* :func:`detect_density_anomaly` — flags whether a profile contains a region
  whose density deviates from the array's mean by more than a threshold,
  i.e. whether the naive attack finds anything to point at.
* :func:`redaction_signal` — compares the profile of an observed layout with
  the profile distribution of freshly built layouts holding the same
  contents; the result is a z-score-like statistic that is large when the
  observed layout could not plausibly have been built from scratch (the
  classic-PMA-after-redaction case).
* :func:`audit_durability_dir` — the stolen-*directory* attack against the
  replication layer's durable artifacts: scan every byte of a durability
  directory (op logs — structurally via read-only frame replay *and* as raw
  bytes — checkpoint images, manifests, compaction scratch files) for
  encodings of a provided "deleted key" set, and profile the images for
  density anomalies.  Against ``durability_mode="logged"`` the audit finds
  the delete frames verbatim; against ``durability_mode="secure"`` — after
  a barrier — it must find nothing, which is exactly what the erasure test
  tier asserts.
"""

from __future__ import annotations

import math
import os
import struct
from dataclasses import dataclass, field
from typing import Callable, Iterable, List, Sequence, Tuple

from repro.errors import ConfigurationError
from repro.storage.encoding import RecordCodec, encoded_record_size


def occupancy_profile(slots: Sequence[object], buckets: int = 16) -> List[float]:
    """Fraction of occupied slots in each of ``buckets`` equal regions."""
    if buckets < 1:
        raise ConfigurationError("buckets must be positive")
    if not slots:
        return [0.0] * buckets
    chunk = max(1, len(slots) // buckets)
    profile = []
    for index in range(buckets):
        start = index * chunk
        stop = len(slots) if index == buckets - 1 else (index + 1) * chunk
        window = slots[start:stop]
        occupied = sum(1 for value in window if value is not None)
        profile.append(occupied / max(1, len(window)))
    return profile


def detect_density_anomaly(slots: Sequence[object], buckets: int = 16,
                           threshold: float = 0.25) -> bool:
    """Whether some region's density deviates from the mean by ``threshold``.

    This is the crudest possible forensic test; it already distinguishes a
    classic PMA that was hammered at one end from one built by random
    inserts, and it never finds anything in an HI PMA beyond its sampling
    noise.
    """
    profile = occupancy_profile(slots, buckets=buckets)
    occupied_buckets = [density for density in profile if density > 0]
    if not occupied_buckets:
        return False
    mean = sum(occupied_buckets) / len(occupied_buckets)
    return any(abs(density - mean) > threshold for density in occupied_buckets)


def redaction_signal(observed_slots: Sequence[object],
                     rebuild: Callable[[], Sequence[object]],
                     trials: int = 30,
                     buckets: int = 16) -> float:
    """How implausible the observed layout is among fresh layouts of the same state.

    ``rebuild`` must build a fresh structure holding the same logical contents
    and return its slot array.  The statistic is the maximum over buckets of
    ``|observed − mean| / (std + ε)``; values around 1–3 are ordinary sampling
    noise, values well above that mean the observed layout carries information
    a fresh build would not (e.g. the hole left by a redacted key block in a
    classic PMA).
    """
    if trials < 2:
        raise ConfigurationError("need at least two trials to estimate variability")
    observed = occupancy_profile(observed_slots, buckets=buckets)
    samples = [occupancy_profile(rebuild(), buckets=buckets) for _ in range(trials)]
    worst = 0.0
    for bucket in range(buckets):
        values = [sample[bucket] for sample in samples]
        mean = sum(values) / len(values)
        variance = sum((value - mean) ** 2 for value in values) / max(1, len(values) - 1)
        std = math.sqrt(variance)
        score = abs(observed[bucket] - mean) / (std + 1e-6)
        worst = max(worst, min(score, 1e6))
    return worst


# --------------------------------------------------------------------------- #
# Durability-directory forensics (the stolen-directory attack)
# --------------------------------------------------------------------------- #

#: Header bytes of one encoded record: tag byte plus the u32 payload length.
_RECORD_HEADER_SIZE = encoded_record_size(0)


def _patterns_for(codec: RecordCodec, key: object) -> Tuple[bytes, bytes]:
    """The two byte patterns whose presence betrays ``key`` on disk.

    The *record* pattern — tag, length, payload, exactly as
    :meth:`RecordCodec.encode` lays them out — matches a bare-key record
    (an op-log delete frame, a key-only snapshot slot).  The *nested*
    pattern — the pair codec's u16 key-blob length, then the key's tag
    byte and payload — matches the key half of a ``(key, value)`` pair
    record (op-log insert/upsert frames, pair snapshot slots).  Both are
    padding-independent prefixes, so they match regardless of the zero
    fill that follows them in a fixed-width record; the u16 anchor keeps
    short keys (whose payloads are mostly zero bytes) from colliding with
    a record's trailing zero padding.
    """
    record = codec.encode(key)
    length = int.from_bytes(record[1:_RECORD_HEADER_SIZE], "big")
    nested = record[:1] + record[_RECORD_HEADER_SIZE:
                                 _RECORD_HEADER_SIZE + length]
    return (record[:_RECORD_HEADER_SIZE + length],
            struct.pack(">H", len(nested)) + nested)


def key_trace_patterns(key: object,
                       payload_size: int = 64) -> Tuple[bytes, bytes]:
    """Byte patterns an observer greps a durable artifact for (see
    :func:`_patterns_for`); ``payload_size`` must match the artifact's
    codec geometry (the replication layer uses 64)."""
    return _patterns_for(RecordCodec(payload_size=payload_size), key)


def scan_bytes_for_keys(blob: bytes, keys: Iterable[object],
                        payload_size: int = 64
                        ) -> List[Tuple[object, int]]:
    """Every ``(key, byte offset)`` where a key's encoding occurs in ``blob``.

    A raw substring scan — no framing assumptions, so it also catches
    encodings inside torn frames, orphaned scratch files, or any other
    byte-level residue a structured replay would skip.  Short keys can in
    principle collide with unrelated payload bytes (the patterns carry the
    codec's tag and length framing, so false positives need those too);
    the erasure tests pick disjoint key/value spaces for exactness.
    """
    codec = RecordCodec(payload_size=payload_size)
    hits: List[Tuple[object, int]] = []
    for key in keys:
        for pattern in _patterns_for(codec, key):
            at = blob.find(pattern)
            while at != -1:
                hits.append((key, at))
                at = blob.find(pattern, at + 1)
    return hits


@dataclass(frozen=True)
class ErasureFinding:
    """One trace of a deleted key inside a durable artifact."""

    file: str      #: file name within the audited directory
    kind: str      #: ``"oplog-frame"`` | ``"image-slot"`` | ``"raw-bytes"``
    key: object    #: the deleted key whose encoding was found
    detail: str    #: human-readable locator (frame op, slot index, offset)


@dataclass(frozen=True)
class DurabilityAuditReport:
    """What the stolen-directory attack concluded.

    ``findings`` are hard evidence — byte-level or structural encodings of
    keys the caller asserts were deleted; :attr:`clean` is their absence.
    ``density_anomalies`` lists checkpoint images whose decoded slot
    arrays show a local-density deviation (the :func:`detect_density_anomaly`
    heuristic) — reported separately because a legitimate layout can trip
    the heuristic, while a finding cannot be legitimate.
    """

    directory: str
    files_scanned: Tuple[str, ...] = field(default=())
    bytes_scanned: int = 0
    findings: Tuple[ErasureFinding, ...] = field(default=())
    density_anomalies: Tuple[str, ...] = field(default=())

    @property
    def clean(self) -> bool:
        return not self.findings


def _audit_oplog_frames(directory: str, name: str, deleted: list,
                        payload_size: int) -> List[ErasureFinding]:
    """Structured pass over one op-log file (read-only frame replay)."""
    from repro.replication.oplog import read_ops

    findings: List[ErasureFinding] = []
    try:
        for index, (op, key, _value) in enumerate(
                read_ops(os.path.join(directory, name),
                         payload_size=payload_size)):
            if key in deleted:
                findings.append(ErasureFinding(
                    file=name, kind="oplog-frame", key=key,
                    detail="%s frame %d" % (op, index)))
    except ConfigurationError:
        # Not a parseable log (foreign file, corrupt interior): the raw
        # byte scan already covered whatever it holds.
        pass
    return findings


def _audit_image_slots(directory: str, manifest: dict, deleted: list,
                       buckets: int, threshold: float
                       ) -> Tuple[List[ErasureFinding], List[str]]:
    """Decode every checkpoint image the manifest references."""
    from repro.storage.pager import PagedFile
    from repro.storage.snapshot import SnapshotMetadata, load_records

    findings: List[ErasureFinding] = []
    anomalies: List[str] = []
    for entry in manifest.get("shards", ()):
        name = entry.get("file")
        path = os.path.join(directory, name or "")
        if not name or not os.path.exists(path):
            continue
        try:
            metadata = SnapshotMetadata(
                kind=entry["kind"], num_slots=entry["num_slots"],
                num_pages=entry["num_pages"], page_size=entry["page_size"],
                payload_size=entry["payload_size"],
                page_order=tuple(entry["page_order"]))
            slots = load_records(PagedFile(page_size=metadata.page_size,
                                           path=path), metadata)
        except (KeyError, TypeError, ConfigurationError):
            continue  # the raw scan already covered the bytes
        for index, slot in enumerate(slots):
            if slot is None:
                continue
            key = slot[0] if isinstance(slot, tuple) and len(slot) == 2 \
                else slot
            if key in deleted:
                findings.append(ErasureFinding(
                    file=name, kind="image-slot", key=key,
                    detail="slot %d" % index))
        if detect_density_anomaly(slots, buckets=buckets,
                                  threshold=threshold):
            anomalies.append(name)
    return findings, anomalies


def audit_durability_dir(directory: str, deleted_keys: Iterable[object] = (),
                         payload_size: int = 64, buckets: int = 16,
                         threshold: float = 0.25) -> DurabilityAuditReport:
    """Run the stolen-directory attack against a durability directory.

    Three passes, none of which touches the engine APIs (the observer only
    has the bytes) and none of which mutates the directory:

    1. **Raw bytes** — every file is scanned for the record and nested-pair
       encodings of every key in ``deleted_keys``
       (:func:`scan_bytes_for_keys`), catching residue in torn frames and
       orphaned ``.compact`` scratch files that no structured reader would
       visit.
    2. **Op-log frames** — files that parse as op logs are replayed
       read-only (:func:`repro.replication.oplog.read_ops`) and every
       frame naming a deleted key is reported with its operation.
    3. **Checkpoint images** — the manifest's image entries are decoded
       back into slot arrays; slots holding a deleted key are reported,
       and each image's occupancy profile is checked for density
       anomalies.

    ``payload_size`` must match the store's codec geometry (the
    replication layer's checkpoint/op-log codec uses 64).
    """
    if not os.path.isdir(directory):
        raise ConfigurationError(
            "cannot audit %r: not a directory" % (directory,))
    deleted = list(deleted_keys)
    codec = RecordCodec(payload_size=payload_size)
    patterns = [(key, _patterns_for(codec, key)) for key in deleted]
    findings: List[ErasureFinding] = []
    anomalies: List[str] = []
    scanned: List[str] = []
    bytes_scanned = 0
    for name in sorted(os.listdir(directory)):
        path = os.path.join(directory, name)
        if not os.path.isfile(path):
            continue
        with open(path, "rb") as handle:
            blob = handle.read()
        scanned.append(name)
        bytes_scanned += len(blob)
        for key, key_patterns in patterns:
            for pattern in key_patterns:
                at = blob.find(pattern)
                while at != -1:
                    findings.append(ErasureFinding(
                        file=name, kind="raw-bytes", key=key,
                        detail="byte offset %d" % at))
                    at = blob.find(pattern, at + 1)
        if blob.startswith(b"REPROLOG"):
            findings.extend(_audit_oplog_frames(directory, name, deleted,
                                                payload_size))
    manifest_path = os.path.join(directory, "manifest.json")
    if os.path.exists(manifest_path):
        from repro.replication.recovery import load_manifest

        try:
            manifest = load_manifest(directory)
        except ConfigurationError:
            manifest = None
        if manifest is not None:
            image_findings, anomalies = _audit_image_slots(
                directory, manifest, deleted, buckets, threshold)
            findings.extend(image_findings)
    return DurabilityAuditReport(
        directory=directory, files_scanned=tuple(scanned),
        bytes_scanned=bytes_scanned, findings=tuple(findings),
        density_anomalies=tuple(anomalies))
