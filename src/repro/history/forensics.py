"""Forensic heuristics an observer could run against a stolen layout.

History independence is motivated by what an *observer* of the raw disk can
infer.  This module implements the simple, practical inference heuristics the
paper's motivation sections allude to, so that examples and tests can show
them succeeding against history-dependent layouts and failing against the
history-independent ones:

* :func:`occupancy_profile` — the local-density fingerprint of a slot array.
  In a classic PMA, regions that absorbed many recent inserts are denser and
  regions that suffered deletions are sparser, so the profile betrays *where*
  in the key space activity happened.
* :func:`detect_density_anomaly` — flags whether a profile contains a region
  whose density deviates from the array's mean by more than a threshold,
  i.e. whether the naive attack finds anything to point at.
* :func:`redaction_signal` — compares the profile of an observed layout with
  the profile distribution of freshly built layouts holding the same
  contents; the result is a z-score-like statistic that is large when the
  observed layout could not plausibly have been built from scratch (the
  classic-PMA-after-redaction case).
"""

from __future__ import annotations

import math
from typing import Callable, List, Sequence

from repro.errors import ConfigurationError


def occupancy_profile(slots: Sequence[object], buckets: int = 16) -> List[float]:
    """Fraction of occupied slots in each of ``buckets`` equal regions."""
    if buckets < 1:
        raise ConfigurationError("buckets must be positive")
    if not slots:
        return [0.0] * buckets
    chunk = max(1, len(slots) // buckets)
    profile = []
    for index in range(buckets):
        start = index * chunk
        stop = len(slots) if index == buckets - 1 else (index + 1) * chunk
        window = slots[start:stop]
        occupied = sum(1 for value in window if value is not None)
        profile.append(occupied / max(1, len(window)))
    return profile


def detect_density_anomaly(slots: Sequence[object], buckets: int = 16,
                           threshold: float = 0.25) -> bool:
    """Whether some region's density deviates from the mean by ``threshold``.

    This is the crudest possible forensic test; it already distinguishes a
    classic PMA that was hammered at one end from one built by random
    inserts, and it never finds anything in an HI PMA beyond its sampling
    noise.
    """
    profile = occupancy_profile(slots, buckets=buckets)
    occupied_buckets = [density for density in profile if density > 0]
    if not occupied_buckets:
        return False
    mean = sum(occupied_buckets) / len(occupied_buckets)
    return any(abs(density - mean) > threshold for density in occupied_buckets)


def redaction_signal(observed_slots: Sequence[object],
                     rebuild: Callable[[], Sequence[object]],
                     trials: int = 30,
                     buckets: int = 16) -> float:
    """How implausible the observed layout is among fresh layouts of the same state.

    ``rebuild`` must build a fresh structure holding the same logical contents
    and return its slot array.  The statistic is the maximum over buckets of
    ``|observed − mean| / (std + ε)``; values around 1–3 are ordinary sampling
    noise, values well above that mean the observed layout carries information
    a fresh build would not (e.g. the hole left by a redacted key block in a
    classic PMA).
    """
    if trials < 2:
        raise ConfigurationError("need at least two trials to estimate variability")
    observed = occupancy_profile(observed_slots, buckets=buckets)
    samples = [occupancy_profile(rebuild(), buckets=buckets) for _ in range(trials)]
    worst = 0.0
    for bucket in range(buckets):
        values = [sample[bucket] for sample in samples]
        mean = sum(values) / len(values)
        variance = sum((value - mean) ** 2 for value in values) / max(1, len(values) - 1)
        std = math.sqrt(variance)
        score = abs(observed[bucket] - mean) / (std + 1e-6)
        worst = max(worst, min(score, 1e6))
    return worst
