"""χ² utilities used by the history-independence audits.

The module implements Pearson's χ² statistic, its p-value via the regularized
upper incomplete gamma function (so the library works even without SciPy,
though SciPy is used when available as a cross-check in the tests), a
goodness-of-fit helper against the uniform distribution, and a χ² test of
homogeneity across several samples of categorical data with automatic pooling
of rare categories.
"""

from __future__ import annotations

import math
from collections import Counter
from typing import Dict, Iterable, List, Sequence, Tuple

from repro.errors import ConfigurationError


def _regularized_upper_gamma(shape: float, x: float) -> float:
    """Q(shape, x) = Γ(shape, x) / Γ(shape), for shape > 0 and x >= 0.

    Uses the series expansion for ``x < shape + 1`` and the continued
    fraction otherwise (Numerical Recipes style).  Accurate to well beyond
    what a statistical audit needs.
    """
    if x < 0 or shape <= 0:
        raise ConfigurationError("invalid arguments to the incomplete gamma function")
    if x == 0:
        return 1.0
    if x < shape + 1.0:
        # Lower series: P(shape, x), then Q = 1 - P.
        term = 1.0 / shape
        total = term
        denominator = shape
        for _ in range(1000):
            denominator += 1.0
            term *= x / denominator
            total += term
            if abs(term) < abs(total) * 1e-15:
                break
        log_prefactor = -x + shape * math.log(x) - math.lgamma(shape)
        lower = total * math.exp(log_prefactor)
        return max(0.0, min(1.0, 1.0 - lower))
    # Continued fraction for Q(shape, x).
    tiny = 1e-300
    b = x + 1.0 - shape
    c = 1.0 / tiny
    d = 1.0 / b
    h = d
    for i in range(1, 1000):
        an = -i * (i - shape)
        b += 2.0
        d = an * d + b
        if abs(d) < tiny:
            d = tiny
        c = b + an / c
        if abs(c) < tiny:
            c = tiny
        d = 1.0 / d
        delta = d * c
        h *= delta
        if abs(delta - 1.0) < 1e-15:
            break
    log_prefactor = -x + shape * math.log(x) - math.lgamma(shape)
    upper = math.exp(log_prefactor) * h
    return max(0.0, min(1.0, upper))


def chi_square_survival(statistic: float, dof: int) -> float:
    """P(X >= statistic) for a χ² variable with ``dof`` degrees of freedom."""
    if dof <= 0:
        raise ConfigurationError("degrees of freedom must be positive")
    if statistic <= 0:
        return 1.0
    return _regularized_upper_gamma(dof / 2.0, statistic / 2.0)


def chi_square_statistic(observed: Sequence[float],
                         expected: Sequence[float]) -> float:
    """Pearson's χ² statistic for observed vs. expected counts."""
    if len(observed) != len(expected):
        raise ConfigurationError("observed and expected must have equal length")
    statistic = 0.0
    for obs, exp in zip(observed, expected):
        if exp <= 0:
            raise ConfigurationError("expected counts must be positive")
        statistic += (obs - exp) ** 2 / exp
    return statistic


def chi_square_gof_pvalue(observed: Sequence[float],
                          expected: Sequence[float]) -> float:
    """p-value of the χ² goodness-of-fit test."""
    statistic = chi_square_statistic(observed, expected)
    dof = len(observed) - 1
    if dof <= 0:
        return 1.0
    return chi_square_survival(statistic, dof)


def uniformity_pvalue(values: Sequence[float], bins: int = 10,
                      low: float = 0.0, high: float = 1.0) -> float:
    """χ² test that continuous ``values`` are uniform on ``[low, high]``.

    Used for the paper's final step: testing that the per-range p-values are
    themselves uniformly distributed.
    """
    if not values:
        raise ConfigurationError("cannot test uniformity of an empty sample")
    if bins < 2:
        raise ConfigurationError("need at least two bins")
    counts = [0] * bins
    width = (high - low) / bins
    for value in values:
        index = int((value - low) / width)
        index = min(max(index, 0), bins - 1)
        counts[index] += 1
    expected = [len(values) / bins] * bins
    return chi_square_gof_pvalue(counts, expected)


def pooled_counts(samples: Sequence[Sequence[object]],
                  min_expected: float = 5.0
                  ) -> Tuple[List[List[int]], List[object]]:
    """Contingency counts per sample with rare categories pooled together.

    Categories whose total count across all samples is too small to give
    every cell an expected value of at least ``min_expected`` are merged into
    a single "other" category, which keeps the χ² approximation honest.
    Returns ``(table, category_labels)`` where ``table[i][j]`` is the count
    of category ``j`` in sample ``i``.
    """
    if not samples:
        raise ConfigurationError("need at least one sample")
    totals: Counter = Counter()
    per_sample: List[Counter] = []
    for sample in samples:
        counter = Counter(sample)
        per_sample.append(counter)
        totals.update(counter)
    grand_total = sum(totals.values())
    keep: List[object] = []
    pooled: List[object] = []
    for category, total in totals.most_common():
        smallest_sample = min(sum(counter.values()) for counter in per_sample)
        expected_smallest = total * smallest_sample / grand_total if grand_total else 0
        if expected_smallest >= min_expected:
            keep.append(category)
        else:
            pooled.append(category)
    labels: List[object] = list(keep)
    if pooled:
        labels.append("__pooled__")
    table: List[List[int]] = []
    for counter in per_sample:
        row = [counter.get(category, 0) for category in keep]
        if pooled:
            row.append(sum(counter.get(category, 0) for category in pooled))
        table.append(row)
    return table, labels


def chi_square_homogeneity(samples: Sequence[Sequence[object]],
                           min_expected: float = 5.0) -> Tuple[float, float, int]:
    """χ² test that several categorical samples come from the same distribution.

    Returns ``(statistic, p_value, degrees_of_freedom)``.  When pooling
    leaves a single category (all samples essentially identical), the test is
    vacuous and ``(0.0, 1.0, 0)`` is returned.
    """
    table, labels = pooled_counts(samples, min_expected=min_expected)
    num_samples = len(table)
    num_categories = len(labels)
    if num_categories < 2 or num_samples < 2:
        return 0.0, 1.0, 0
    row_totals = [sum(row) for row in table]
    column_totals = [sum(table[i][j] for i in range(num_samples))
                     for j in range(num_categories)]
    grand_total = sum(row_totals)
    statistic = 0.0
    for i in range(num_samples):
        for j in range(num_categories):
            expected = row_totals[i] * column_totals[j] / grand_total
            if expected <= 0:
                continue
            statistic += (table[i][j] - expected) ** 2 / expected
    dof = (num_samples - 1) * (num_categories - 1)
    if dof <= 0:
        return statistic, 1.0, 0
    return statistic, chi_square_survival(statistic, dof), dof


def histogram(values: Iterable[object]) -> Dict[object, int]:
    """Convenience counter used by audits and benches."""
    return dict(Counter(values))
