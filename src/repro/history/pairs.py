"""Equivalent-history trace pairs for the weak-history-independence audit.

Definition 4 compares operation sequences that reach the *same state*.  The
audit in :mod:`repro.history.audit` needs such sequences as input; this
module generates standard families of them for a given final key set:

* different insertion orders (sorted, reverse-sorted, random shuffles), and
* sequences with *detours* — extra keys inserted and later deleted — which
  reach the same state through genuinely different histories (this is the
  family that exposes the classic PMA and B-tree as history dependent even
  when the insertion order alone would not).

Every generated trace ends with the same live key set, which
:func:`verify_equivalent` checks so audit harness mistakes surface as errors
rather than as spurious statistical findings.
"""

from __future__ import annotations

from typing import Callable, List, Optional, Sequence

from repro._rng import RandomLike, make_rng
from repro.errors import ConfigurationError
from repro.workloads.generators import Operation, OperationKind, apply_to_dictionary, apply_to_ranked
from repro.workloads.patterns import live_keys_of


def insertion_order_variants(keys: Sequence[int], shuffles: int = 2,
                             seed: RandomLike = None) -> List[List[Operation]]:
    """Traces inserting the same keys in different orders.

    Returns sorted order, reverse-sorted order, and ``shuffles`` random
    permutations (all distinct with overwhelming probability).
    """
    if not keys:
        raise ConfigurationError("need a non-empty key set")
    rng = make_rng(seed)
    ordered = sorted(keys)
    variants = [
        [Operation(OperationKind.INSERT, key) for key in ordered],
        [Operation(OperationKind.INSERT, key) for key in reversed(ordered)],
    ]
    for _ in range(max(0, shuffles)):
        permuted = list(ordered)
        rng.shuffle(permuted)
        variants.append([Operation(OperationKind.INSERT, key) for key in permuted])
    return variants


def detour_variant(keys: Sequence[int], extra_keys: Sequence[int],
                   seed: RandomLike = None) -> List[Operation]:
    """A trace that inserts ``keys`` and ``extra_keys``, then deletes the extras.

    The extra keys must be disjoint from ``keys``.  The interleaving is
    random so the detour does not reduce to "append then trim".
    """
    overlap = set(keys) & set(extra_keys)
    if overlap:
        raise ConfigurationError("extra keys overlap the final key set: %r"
                                 % (sorted(overlap)[:5],))
    rng = make_rng(seed)
    inserts = [Operation(OperationKind.INSERT, key) for key in keys] + \
        [Operation(OperationKind.INSERT, key) for key in extra_keys]
    rng.shuffle(inserts)
    deletes = [Operation(OperationKind.DELETE, key) for key in extra_keys]
    rng.shuffle(deletes)
    return inserts + deletes


def equivalent_histories(keys: Sequence[int], detour_keys: Sequence[int] = (),
                         shuffles: int = 2,
                         seed: RandomLike = None) -> List[List[Operation]]:
    """The standard audit family: order variants plus (optionally) a detour.

    All returned traces leave exactly ``keys`` live; see
    :func:`verify_equivalent`.
    """
    rng = make_rng(seed)
    variants = insertion_order_variants(keys, shuffles=shuffles,
                                        seed=rng.getrandbits(64))
    if detour_keys:
        variants.append(detour_variant(keys, detour_keys,
                                       seed=rng.getrandbits(64)))
    verify_equivalent(variants)
    return variants


def verify_equivalent(traces: Sequence[List[Operation]]) -> None:
    """Raise :class:`ConfigurationError` unless all traces end in the same state."""
    if not traces:
        raise ConfigurationError("need at least one trace")
    reference = live_keys_of(traces[0])
    for index, trace in enumerate(traces[1:], start=1):
        if live_keys_of(trace) != reference:
            raise ConfigurationError(
                "trace %d leaves a different live key set than trace 0" % (index,))


def dictionary_builders(factory: Callable[[], object],
                        traces: Sequence[List[Operation]],
                        value_of: Optional[Callable[[int], object]] = None
                        ) -> List[Callable[[], object]]:
    """Builders (for the audit) replaying each trace against a key-addressed dictionary."""
    def make_builder(trace: List[Operation]) -> Callable[[], object]:
        def build() -> object:
            structure = factory()
            apply_to_dictionary(structure, trace, value_of=value_of)
            return structure
        return build

    return [make_builder(trace) for trace in traces]


def ranked_builders(factory: Callable[[], object],
                    traces: Sequence[List[Operation]],
                    value_of: Optional[Callable[[int], object]] = None
                    ) -> List[Callable[[], object]]:
    """Builders (for the audit) replaying each trace against a rank-addressed structure."""
    def make_builder(trace: List[Operation]) -> Callable[[], object]:
        def build() -> object:
            structure = factory()
            apply_to_ranked(structure, trace, value_of=value_of)
            return structure
        return build

    return [make_builder(trace) for trace in traces]


def registry_builders(name: str,
                      traces: Sequence[List[Operation]],
                      block_size: int = 8,
                      value_of: Optional[Callable[[int], object]] = None,
                      **extra: object) -> List[Callable[[], object]]:
    """Audit builders for any structure registered in :mod:`repro.api.registry`.

    The registry metadata decides the replay style: rank-addressed entries
    (the PMAs) are driven through :func:`ranked_builders` on their raw
    structure, everything else through :func:`dictionary_builders`.  Each
    build draws fresh internal randomness (no seed), which is what the audit
    needs to sample the representation distribution.  ``extra`` forwards
    structure-specific parameters (e.g. ``shards``/``inner`` for the sharded
    router) to every build.
    """
    from repro.api.registry import get_info, make_raw_structure

    info = get_info(name)
    factory = lambda: make_raw_structure(name, block_size=block_size, **extra)
    if info.rank_addressed:
        return ranked_builders(factory, traces, value_of=value_of)
    return dictionary_builders(factory, traces, value_of=value_of)
