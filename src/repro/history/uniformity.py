"""The paper's §4.3 balance-element uniformity experiment.

The history independence of the PMA rests on Invariant 6: after every
operation, each range's balance element is uniformly distributed over the
range's candidate set.  The paper audits this empirically: insert the values
``1..K`` sequentially, record the balance element's position within its
candidate set for every range whose candidate set has at least eight
elements, repeat many times, run a χ² goodness-of-fit test per range, and
finally test that the resulting p-values are themselves uniform (they report
p = 0.47 over 148 ranges).

This module reproduces that pipeline.  Because the PMA's geometry is itself
random (``N̂`` is drawn fresh per trial, so candidate-set sizes differ across
trials), samples are grouped by ``(depth, window length)``: all balance
positions observed at that depth for ranges whose candidate set had exactly
that length are pooled into one χ² test.  Under Invariant 6 every such sample
is uniform on the same support, so pooling is statistically sound and gives
each group enough mass; groups that still do not reach the paper's minimum
expected count per bucket are dropped, exactly as in the paper.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro._rng import RandomLike, make_rng
from repro.core.hi_pma import HistoryIndependentPMA, PMAParameters
from repro.history.statistics import chi_square_gof_pvalue, uniformity_pvalue

GroupKey = Tuple[int, int]


@dataclass
class BalanceUniformityResult:
    """Outcome of the balance-uniformity experiment."""

    num_keys: int
    trials: int
    min_window: int
    min_expected: float
    group_p_values: Dict[GroupKey, float]
    overall_p_value: float

    @property
    def num_groups(self) -> int:
        """Number of (range, window-size) groups that entered the final test."""
        return len(self.group_p_values)

    def passes(self, significance: float = 0.001) -> bool:
        """Whether the p-values are consistent with uniform balance positions."""
        return self.overall_p_value >= significance


def balance_uniformity_experiment(num_keys: int = 2000,
                                  trials: int = 300,
                                  min_window: int = 8,
                                  min_expected: float = 10.0,
                                  params: Optional[PMAParameters] = None,
                                  seed: RandomLike = None) -> BalanceUniformityResult:
    """Run the §4.3 experiment and return per-range and overall p-values.

    Parameters mirror the paper: ``min_window`` is the smallest candidate-set
    size considered (8), ``min_expected`` the smallest expected count per
    position bucket (10).  The defaults are scaled down from the paper's
    100,000 keys × 10,000 trials so the experiment runs in seconds; the
    benchmark harness can raise them.
    """
    rng = make_rng(seed)
    samples: Dict[GroupKey, List[int]] = defaultdict(list)
    for _trial in range(trials):
        pma = HistoryIndependentPMA(params=params, seed=rng.getrandbits(64))
        for value in range(1, num_keys + 1):
            pma.append(value)
        for _node, depth, window_length, position in pma.balance_positions():
            if window_length >= min_window:
                samples[(depth, window_length)].append(position)
    group_p_values: Dict[GroupKey, float] = {}
    for key, positions in samples.items():
        window_length = key[1]
        expected_per_bucket = len(positions) / window_length
        if expected_per_bucket < min_expected:
            continue
        counts = [0] * window_length
        for position in positions:
            counts[position] += 1
        expected = [expected_per_bucket] * window_length
        group_p_values[key] = chi_square_gof_pvalue(counts, expected)
    if group_p_values:
        overall = uniformity_pvalue(list(group_p_values.values()),
                                    bins=min(10, max(2, len(group_p_values) // 5)))
    else:
        overall = 1.0
    return BalanceUniformityResult(
        num_keys=num_keys,
        trials=trials,
        min_window=min_window,
        min_expected=min_expected,
        group_p_values=group_p_values,
        overall_p_value=overall,
    )
