"""van Emde Boas layout of complete binary trees.

A complete binary tree with ``L`` levels (``2**L - 1`` nodes) is stored in an
array so that any root-to-leaf path touches ``O(log_B N)`` blocks for *every*
block size ``B`` simultaneously: the tree is cut at the middle level, the top
subtree is laid out first, followed by each bottom subtree left to right, and
the rule is applied recursively.

The layout is deterministic — it depends only on the number of levels — which
is exactly why the paper can use it for the rank tree and the balance-key
tree without affecting history independence (Section 3.5).

Nodes are addressed by their 1-based breadth-first (heap) index: the root is
``1`` and node ``v`` has children ``2v`` and ``2v + 1``.  Leaves are also
addressable by their left-to-right leaf index.
"""

from __future__ import annotations

from typing import Hashable, Iterator, List, Optional, Sequence

from repro.errors import ConfigurationError
from repro.memory.tracker import IOTracker


class VanEmdeBoasLayout:
    """Position map of the vEB layout for a complete binary tree.

    Parameters
    ----------
    levels:
        Number of node levels.  A tree with ``levels`` levels has
        ``2**levels - 1`` nodes and ``2**(levels - 1)`` leaves.
    """

    def __init__(self, levels: int) -> None:
        if levels <= 0:
            raise ConfigurationError("levels must be positive, got %r" % (levels,))
        self.levels = levels
        self.num_nodes = (1 << levels) - 1
        self.num_leaves = 1 << (levels - 1)
        self._position: List[int] = [0] * (self.num_nodes + 1)
        self._bfs_at: List[int] = [0] * self.num_nodes
        self._assign(root=1, levels=levels, offset=0)

    # ------------------------------------------------------------------ #
    # Layout construction
    # ------------------------------------------------------------------ #

    def _assign(self, root: int, levels: int, offset: int) -> int:
        """Assign vEB positions to the subtree at ``root``; return next offset."""
        if levels == 1:
            self._position[root] = offset
            self._bfs_at[offset] = root
            return offset + 1
        top_levels = levels // 2
        bottom_levels = levels - top_levels
        offset = self._assign(root, top_levels, offset)
        # Roots of the bottom subtrees are the children of the top subtree's
        # leaves, i.e. BFS indices root * 2**top_levels + j.
        first_bottom_root = root << top_levels
        for j in range(1 << top_levels):
            offset = self._assign(first_bottom_root + j, bottom_levels, offset)
        return offset

    def _assign_top_only(self, root: int, levels: int, offset: int) -> int:
        """Assign positions to only the top ``levels`` levels below ``root``."""
        # Retained as a private hook for partial layouts; currently the full
        # recursive assignment above covers every use in the library.
        return self._assign(root, levels, offset)

    # ------------------------------------------------------------------ #
    # Addressing
    # ------------------------------------------------------------------ #

    def position(self, bfs_index: int) -> int:
        """Array position of the node with the given BFS index."""
        self._check_bfs(bfs_index)
        return self._position[bfs_index]

    def bfs_at_position(self, position: int) -> int:
        """BFS index of the node stored at an array position."""
        if not 0 <= position < self.num_nodes:
            raise IndexError("position %r out of range" % (position,))
        return self._bfs_at[position]

    def depth(self, bfs_index: int) -> int:
        """Depth of a node (root has depth 0)."""
        self._check_bfs(bfs_index)
        return bfs_index.bit_length() - 1

    def is_leaf(self, bfs_index: int) -> bool:
        """Whether the node is on the last level."""
        return self.depth(bfs_index) == self.levels - 1

    def parent(self, bfs_index: int) -> int:
        """BFS index of the parent node."""
        self._check_bfs(bfs_index)
        if bfs_index == 1:
            raise IndexError("the root has no parent")
        return bfs_index >> 1

    def left_child(self, bfs_index: int) -> int:
        """BFS index of the left child."""
        child = bfs_index << 1
        self._check_bfs(child)
        return child

    def right_child(self, bfs_index: int) -> int:
        """BFS index of the right child."""
        child = (bfs_index << 1) | 1
        self._check_bfs(child)
        return child

    def leaf_bfs_index(self, leaf_index: int) -> int:
        """BFS index of the ``leaf_index``-th leaf (left to right, 0-based)."""
        if not 0 <= leaf_index < self.num_leaves:
            raise IndexError("leaf index %r out of range" % (leaf_index,))
        return self.num_leaves + leaf_index

    def leaf_index(self, bfs_index: int) -> int:
        """Left-to-right index of a leaf node."""
        if not self.is_leaf(bfs_index):
            raise ValueError("node %r is not a leaf" % (bfs_index,))
        return bfs_index - self.num_leaves

    def root_to_node_path(self, bfs_index: int) -> List[int]:
        """BFS indices on the path from the root down to ``bfs_index``."""
        self._check_bfs(bfs_index)
        path = []
        node = bfs_index
        while node >= 1:
            path.append(node)
            node >>= 1
        path.reverse()
        return path

    def path_positions(self, bfs_index: int) -> List[int]:
        """Array positions touched by a root-to-node traversal."""
        return [self._position[node] for node in self.root_to_node_path(bfs_index)]

    def subtree_nodes(self, bfs_index: int) -> Iterator[int]:
        """Yield BFS indices of the subtree rooted at ``bfs_index`` (pre-order)."""
        self._check_bfs(bfs_index)
        stack = [bfs_index]
        while stack:
            node = stack.pop()
            yield node
            left = node << 1
            if left <= self.num_nodes:
                stack.append(left | 1)
                stack.append(left)

    def _check_bfs(self, bfs_index: int) -> None:
        if not 1 <= bfs_index <= self.num_nodes:
            raise IndexError(
                "BFS index %r out of range for a %d-level tree"
                % (bfs_index, self.levels)
            )


class CompleteBinaryTree:
    """A complete binary tree of values stored contiguously in vEB order.

    The tree optionally routes its slot touches through an
    :class:`~repro.memory.tracker.IOTracker`, so traversals are charged
    ``O(log_B N)`` I/Os exactly as in the cache-oblivious analysis.
    """

    def __init__(self, levels: int, default: object = None,
                 tracker: Optional[IOTracker] = None,
                 array_name: Hashable = "veb-tree") -> None:
        self.layout = VanEmdeBoasLayout(levels)
        self._values: List[object] = [default] * self.layout.num_nodes
        self._default = default
        self._tracker = tracker
        self._array_name = array_name

    # -- value access ---------------------------------------------------- #

    def get(self, bfs_index: int) -> object:
        """Read the value stored at a node (charges at most one I/O)."""
        position = self.layout.position(bfs_index)
        self._touch(position, write=False)
        return self._values[position]

    def set(self, bfs_index: int, value: object) -> None:
        """Write the value stored at a node (charges at most one I/O)."""
        position = self.layout.position(bfs_index)
        self._touch(position, write=True)
        self._values[position] = value

    def get_many(self, bfs_indices: Sequence[int]) -> List[object]:
        """Read several nodes (e.g. a root-to-leaf path) in order.

        The whole batch is charged through one
        :meth:`~repro.memory.tracker.IOTracker.charge_many` call — same
        blocks, same order, same cache behaviour as per-node :meth:`get`
        calls, without the per-node tracker round-trips.
        """
        position_of = self.layout.position
        positions = [position_of(index) for index in bfs_indices]
        if self._tracker is not None:
            array_name = self._array_name
            self._tracker.charge_many(
                [(array_name, position, position + 1)
                 for position in positions])
        values = self._values
        return [values[position] for position in positions]

    def fill(self, value: object) -> None:
        """Reset every node to ``value`` with a single linear scan."""
        self._values = [value] * self.layout.num_nodes
        if self._tracker is not None:
            self._tracker.touch_range(self._array_name, 0,
                                      self.layout.num_nodes, write=True)

    def values_in_layout_order(self) -> List[object]:
        """The raw backing array — the memory representation of the tree."""
        return list(self._values)

    # -- convenience re-exports ------------------------------------------ #

    @property
    def levels(self) -> int:
        return self.layout.levels

    @property
    def num_nodes(self) -> int:
        return self.layout.num_nodes

    @property
    def num_leaves(self) -> int:
        return self.layout.num_leaves

    def _touch(self, position: int, write: bool) -> None:
        if self._tracker is not None:
            self._tracker.touch_slot(self._array_name, position, write=write)
