"""Static cache-oblivious layouts.

Currently this package contains the van Emde Boas (vEB) layout of a complete
binary tree, which the paper uses for both auxiliary trees of the PMA (the
rank tree of Section 3.5 and the balance-key tree of Section 5).  The layout
is deterministic, so storing a tree in vEB order is automatically history
independent.
"""

from repro.layout.veb import VanEmdeBoasLayout, CompleteBinaryTree

__all__ = ["VanEmdeBoasLayout", "CompleteBinaryTree"]
