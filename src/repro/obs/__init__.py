"""One telemetry plane for the whole stack.

``repro.obs`` unifies the per-layer stats surfaces that grew with the
engine — ``io_stats()``, ``PlaneStats``, ``erasure_stats()``,
``replica_read_stats()`` — behind three small pieces:

* :class:`~repro.obs.metrics.MetricsRegistry` — counters, gauges and
  fixed-boundary latency histograms with deterministic bucket edges, so
  a snapshot of the counting half is bit-stable and gateable exactly
  like the existing I/O counts.  Per-thread accumulation keeps the hot
  path lock-free; ``snapshot()`` aggregates and ``merge()`` folds one
  snapshot into another (worker registries back into the parent).
* :class:`~repro.obs.tracing.Tracer` / :class:`~repro.obs.tracing.Span`
  — request-scoped tracing with trace/parent ids and monotonic timings,
  propagated across the shm/pipe crossing (a trace header element on
  worker commands, worker-side child spans for decode/apply/fsync) and
  across the wire (a ``"trace"`` field in the net protocol's request
  headers, echoed in replies).  Opt-in (``EngineConfig.telemetry`` /
  ``REPRO_TRACE=1``); when disabled every call site takes a shared
  no-op fast path.
* :func:`~repro.obs.exposition.to_prometheus` — a dependency-free
  Prometheus-style text rendering of any telemetry snapshot, served by
  ``repro stats`` and the server's ``stats`` verb.
"""

from repro.obs.metrics import DEFAULT_BUCKET_EDGES_MS, MetricsRegistry
from repro.obs.tracing import (
    NULL_SPAN,
    NULL_TRACER,
    Span,
    Tracer,
    child_span,
    current_span,
    render_trace,
    run_under,
)
from repro.obs.exposition import to_prometheus

__all__ = [
    "DEFAULT_BUCKET_EDGES_MS",
    "MetricsRegistry",
    "NULL_SPAN",
    "NULL_TRACER",
    "Span",
    "Tracer",
    "child_span",
    "current_span",
    "render_trace",
    "run_under",
    "to_prometheus",
]
