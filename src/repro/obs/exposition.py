"""Prometheus-style text exposition, dependency-free.

Renders a flat telemetry snapshot (``{"plane.bytes": 132375, ...}``)
into the text format scrapers expect::

    # TYPE repro_plane_bytes untyped
    repro_plane_bytes 132375

Metric names are sanitised to ``[a-zA-Z0-9_]`` (dots become
underscores); histogram bucket entries (``*.le_<edge>``) are folded
into proper ``_bucket{le="<edge>"}`` series so a real Prometheus can
ingest the latency histograms as histograms.
"""

from __future__ import annotations

import re
from typing import Dict, Union

Number = Union[int, float]

_SANITISE = re.compile(r"[^a-zA-Z0-9_]")
_BUCKET = re.compile(r"^(?P<base>.+)\.le_(?P<edge>inf|[0-9.]+)$")


def _name(raw: str, prefix: str) -> str:
    cleaned = _SANITISE.sub("_", raw)
    if prefix:
        cleaned = "%s_%s" % (prefix, cleaned)
    return cleaned


def _value(value: Number) -> str:
    if isinstance(value, float):
        return repr(value)
    return str(value)


def to_prometheus(snapshot: Dict[str, Number], prefix: str = "repro") -> str:
    """Render ``snapshot`` as Prometheus text exposition."""
    lines = []
    typed = set()
    for raw in sorted(snapshot):
        value = snapshot[raw]
        if not isinstance(value, (int, float)) or isinstance(value, bool):
            continue  # snapshots may carry stray non-numeric metadata
        bucket = _BUCKET.match(raw)
        if bucket:
            base = _name(bucket.group("base"), prefix)
            series = base + "_bucket"
            if series not in typed:
                lines.append("# TYPE %s histogram" % base)
                typed.add(series)
            edge = bucket.group("edge")
            label = "+Inf" if edge == "inf" else edge
            lines.append('%s{le="%s"} %s' % (series, label, _value(value)))
            continue
        name = _name(raw, prefix)
        if name not in typed:
            lines.append("# TYPE %s untyped" % name)
            typed.add(name)
        lines.append("%s %s" % (name, _value(value)))
    return "\n".join(lines) + "\n"
