"""The unified metrics registry: counters, gauges, latency histograms.

Counters and histogram bucket counts are *deterministic* — pure
functions of the operation stream — which is what lets the baseline
gate ``telemetry.*`` metrics at ``--tolerance 0`` next to the I/O
counts.  Only histogram ``sum_ms`` values (and gauges that record
sizes) carry wall clock, and those are never gated.

Accumulation is per-thread and lock-free: each thread owns a private
cell keyed by its ident, so the hot path is two dict operations with no
lock (atomic under the GIL).  ``snapshot()`` sums across cells;
``merge()`` folds a foreign snapshot (for example a worker process's
registry, shipped back over the pipe) into a dedicated cell so repeated
merges accumulate instead of overwriting.
"""

from __future__ import annotations

import threading
from typing import Dict, Iterable, Optional, Tuple, Union

Number = Union[int, float]

#: Fixed histogram boundaries, in milliseconds.  Shared by every
#: histogram in the process so snapshots from different layers merge
#: bucket-by-bucket, and committed so they never drift between runs.
DEFAULT_BUCKET_EDGES_MS: Tuple[float, ...] = (
    0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0, 25.0, 50.0,
    100.0, 250.0, 500.0, 1000.0, 2500.0,
)

#: The synthetic cell key ``merge()`` accumulates into — not a real
#: thread ident, so it can never collide with one.
_MERGE_CELL = "merged"


class _Histogram:
    """One thread's view of a fixed-boundary latency histogram."""

    __slots__ = ("edges", "buckets", "count", "total_ms")

    def __init__(self, edges: Tuple[float, ...]) -> None:
        self.edges = edges
        self.buckets = [0] * (len(edges) + 1)  # +1 for the +Inf bucket
        self.count = 0
        self.total_ms = 0.0

    def observe(self, value_ms: float) -> None:
        index = 0
        for edge in self.edges:
            if value_ms <= edge:
                break
            index += 1
        self.buckets[index] += 1
        self.count += 1
        self.total_ms += value_ms


class _Cell:
    """One thread's private accumulation state."""

    __slots__ = ("counters", "histograms")

    def __init__(self) -> None:
        self.counters: Dict[str, Number] = {}
        self.histograms: Dict[str, _Histogram] = {}


class MetricsRegistry:
    """Process-local metrics: lock-free writes, aggregating snapshots.

    The snapshot is one flat ``{name: number}`` mapping.  Histogram
    ``name`` expands to ``name.le_<edge>`` per bucket plus
    ``name.count`` and ``name.sum_ms`` — the bucket counts and
    ``count`` are deterministic, ``sum_ms`` is wall clock.
    """

    def __init__(self,
                 edges: Tuple[float, ...] = DEFAULT_BUCKET_EDGES_MS) -> None:
        self._edges = tuple(edges)
        self._cells: Dict[object, _Cell] = {}
        self._gauges: Dict[str, Number] = {}
        self._lock = threading.Lock()  # guards cell *creation* only
        self.merges = 0  # merge()/fold count — deterministic, gateable

    # ------------------------------------------------------------------ #
    # Hot path
    # ------------------------------------------------------------------ #

    def _cell(self) -> _Cell:
        ident = threading.get_ident()
        cell = self._cells.get(ident)
        if cell is None:
            with self._lock:
                cell = self._cells.setdefault(ident, _Cell())
        return cell

    def inc(self, name: str, amount: Number = 1) -> None:
        """Bump a counter (creates it at zero on first touch)."""
        counters = self._cell().counters
        counters[name] = counters.get(name, 0) + amount

    def set_gauge(self, name: str, value: Number) -> None:
        """Set a gauge: last write wins, no per-thread split."""
        self._gauges[name] = value

    def observe_ms(self, name: str, value_ms: float) -> None:
        """Record one latency observation into ``name``'s histogram."""
        histograms = self._cell().histograms
        histogram = histograms.get(name)
        if histogram is None:
            histogram = histograms[name] = _Histogram(self._edges)
        histogram.observe(value_ms)

    # ------------------------------------------------------------------ #
    # Aggregation
    # ------------------------------------------------------------------ #

    def snapshot(self) -> Dict[str, Number]:
        """Aggregate every thread's cell into one flat mapping."""
        out: Dict[str, Number] = {}
        hists: Dict[str, Tuple[list, int, float]] = {}
        with self._lock:
            cells = list(self._cells.values())
        for cell in cells:
            for name, value in cell.counters.items():
                out[name] = out.get(name, 0) + value
            for name, histogram in cell.histograms.items():
                merged = hists.get(name)
                if merged is None:
                    hists[name] = ([*histogram.buckets], histogram.count,
                                   histogram.total_ms)
                else:
                    buckets, count, total = merged
                    for index, bump in enumerate(histogram.buckets):
                        buckets[index] += bump
                    hists[name] = (buckets, count + histogram.count,
                                   total + histogram.total_ms)
        for name, (buckets, count, total_ms) in hists.items():
            for index, edge in enumerate(self._edges):
                out["%s.le_%g" % (name, edge)] = buckets[index]
            out["%s.le_inf" % name] = buckets[-1]
            out["%s.count" % name] = count
            out["%s.sum_ms" % name] = round(total_ms, 3)
        out.update(self._gauges)
        return out

    def merge(self, snapshot: Dict[str, Number],
              prefix: Optional[str] = None) -> None:
        """Fold a foreign snapshot in, additively, under ``prefix``.

        Used to pull a worker-side registry back into the parent's;
        repeated merges accumulate in a dedicated cell.  ``sum_ms``
        entries add like counters, which is the right semantics for
        histogram tails.
        """
        with self._lock:
            cell = self._cells.setdefault(_MERGE_CELL, _Cell())
        counters = cell.counters
        for name, value in snapshot.items():
            key = "%s.%s" % (prefix, name) if prefix else name
            counters[key] = counters.get(key, 0) + value
        self.merges += 1

    def reset(self) -> None:
        """Drop every cell and gauge (tests and bench reruns)."""
        with self._lock:
            self._cells.clear()
            self._gauges.clear()
            self.merges = 0


def namespaced(snapshot: Dict[str, Number], prefix: str,
               items: Iterable[Tuple[str, Number]]) -> None:
    """Fold ``items`` into ``snapshot`` under ``prefix.`` (adapter glue)."""
    for name, value in items:
        snapshot["%s.%s" % (prefix, name)] = value
