"""Request tracing across threads, worker processes and the wire.

A :class:`Span` is one timed region with a trace id, span id, parent
id, tags and monotonic start/stop.  Spans nest through a module-level
*per-thread* stack: entering a span pushes it, exiting pops it and
attaches the finished span (as a plain dict) to its parent, so a
finished root span carries its whole subtree.  Ids are derived from the
pid and a process-local counter — no wall clock, so traced runs stay
deterministic wherever the ids land in gated output.

Crossing boundaries:

* **pipe/shm** — the parent sends ``tracer.header()`` (a two-key dict)
  as an extra element on the worker command tuple; the worker adopts it
  (:meth:`Tracer.adopt`), runs the command under the adopted span so
  :func:`child_span` picks up decode/apply/fsync sub-spans, and ships
  the finished span dict back on the reply for the parent to
  :meth:`~Tracer.graft` into its own tree.
* **wire** — the client puts the same header under a ``"trace"`` key in
  the request's JSON message header; the server adopts it and echoes
  the trace id in the reply header.

When tracing is disabled (the default), :meth:`Tracer.span` returns a
shared no-op singleton and :func:`child_span` returns it too — the
fast path is one attribute test, which is what keeps the throughput
bench within the ≤2% overhead bound.

``REPRO_TRACE=1`` enables tracing process-wide; ``REPRO_SLOW_OP_MS``
sets the slow-op threshold (any finished *root* span at or over it is
rendered into the slow-op log).
"""

from __future__ import annotations

import itertools
import os
import threading
from collections import deque
from time import perf_counter
from typing import Callable, Dict, List, Optional, Sequence

#: Environment switches (documented in the README's Observability section).
TRACE_ENV = "REPRO_TRACE"
SLOW_OP_ENV = "REPRO_SLOW_OP_MS"

#: Wire/pipe trace-header keys — two short strings so the header stays
#: a handful of bytes on either transport.
HEADER_TRACE = "trace"
HEADER_SPAN = "span"

_IDS = itertools.count(1)
_LOCAL = threading.local()


def _stack() -> list:
    try:
        return _LOCAL.stack
    except AttributeError:
        stack = _LOCAL.stack = []
        return stack


def current_span() -> Optional["Span"]:
    """The innermost live span on *this thread*, or ``None``."""
    stack = _stack()
    return stack[-1] if stack else None


def _next_span_id() -> str:
    return "%x-%x" % (os.getpid(), next(_IDS))


class _NullSpan:
    """The shared do-nothing span every disabled call site receives."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc) -> bool:
        return False

    def tag(self, _name: str, _value: object) -> "_NullSpan":
        return self


NULL_SPAN = _NullSpan()


class Span:
    """One timed region of one request; context manager."""

    __slots__ = ("trace_id", "span_id", "parent_id", "name", "tags",
                 "started", "ended", "children", "_tracer", "_parent")

    def __init__(self, tracer: "Tracer", name: str,
                 parent: Optional["Span"] = None,
                 trace_id: Optional[str] = None,
                 parent_id: Optional[str] = None,
                 tags: Optional[Dict[str, object]] = None) -> None:
        self.span_id = _next_span_id()
        if parent is not None:
            self.trace_id = parent.trace_id
            self.parent_id = parent.span_id
        else:
            self.trace_id = trace_id or ("t" + self.span_id)
            self.parent_id = parent_id
        self.name = name
        self.tags = dict(tags) if tags else {}
        self.started = perf_counter()
        self.ended: Optional[float] = None
        self.children: List[dict] = []
        self._tracer = tracer
        self._parent = parent

    def tag(self, name: str, value: object) -> "Span":
        self.tags[name] = value
        return self

    @property
    def duration_ms(self) -> float:
        ended = self.ended if self.ended is not None else perf_counter()
        return (ended - self.started) * 1000.0

    def to_dict(self) -> dict:
        return {
            "trace": self.trace_id,
            "span": self.span_id,
            "parent": self.parent_id,
            "name": self.name,
            "ms": round(self.duration_ms, 3),
            "tags": self.tags,
            "children": self.children,
        }

    def __enter__(self) -> "Span":
        _stack().append(self)
        return self

    def __exit__(self, *exc) -> bool:
        self.finish()
        return False

    def finish(self) -> None:
        if self.ended is not None:  # idempotent — explicit finish + __exit__
            return
        self.ended = perf_counter()
        stack = _stack()
        if stack and stack[-1] is self:
            stack.pop()
        if self._parent is not None:
            self._parent.children.append(self.to_dict())
        else:
            self._tracer._record_root(self)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "Span(%s trace=%s %.3fms)" % (self.name, self.trace_id,
                                             self.duration_ms)


class Tracer:
    """Span factory plus the bounded ring of recent finished traces.

    ``counters`` holds the deterministic accounting the baseline gates:
    ``spans`` (created here, roots and local children), ``adopted``
    (spans continuing a foreign trace id), ``crossings`` (worker
    commands that carried a trace header), ``worker_spans`` (finished
    worker span dicts grafted back), ``slow_ops`` (root spans at or
    over the slow threshold).
    """

    def __init__(self, enabled: bool = False, ring: int = 64,
                 slow_ms: Optional[float] = None,
                 slow_log: int = 128) -> None:
        self.enabled = enabled
        self.counters: Dict[str, int] = {
            "spans": 0, "adopted": 0, "crossings": 0,
            "worker_spans": 0, "slow_ops": 0,
        }
        self.ring: deque = deque(maxlen=ring)
        if slow_ms is None:
            raw = os.environ.get(SLOW_OP_ENV, "")
            slow_ms = float(raw) if raw else float("inf")
        self.slow_ms = slow_ms
        self.slow_log: deque = deque(maxlen=slow_log)

    @classmethod
    def from_env(cls, default_enabled: bool = False) -> "Tracer":
        raw = os.environ.get(TRACE_ENV, "")
        enabled = default_enabled or raw not in ("", "0")
        return cls(enabled=enabled)

    # ------------------------------------------------------------------ #
    # Span creation
    # ------------------------------------------------------------------ #

    def span(self, name: str,
             tags: Optional[Dict[str, object]] = None):
        """A child of this thread's current span (or a new root)."""
        if not self.enabled:
            return NULL_SPAN
        self.counters["spans"] += 1
        return Span(self, name, parent=current_span(), tags=tags)

    def adopt(self, header: Optional[dict], name: str,
              tags: Optional[Dict[str, object]] = None):
        """Continue a foreign trace from a pipe/wire header.

        The adopted span is a *local* root (it lands in this tracer's
        ring when it finishes) but keeps the remote trace id and points
        its parent id at the remote span, so the two sides of the
        crossing stitch into one tree.
        """
        if not self.enabled:
            return NULL_SPAN
        if not header:
            return self.span(name, tags)
        self.counters["spans"] += 1
        self.counters["adopted"] += 1
        return Span(self, name, parent=None,
                    trace_id=header.get(HEADER_TRACE),
                    parent_id=header.get(HEADER_SPAN), tags=tags)

    # ------------------------------------------------------------------ #
    # Crossing glue
    # ------------------------------------------------------------------ #

    def header(self) -> Optional[dict]:
        """The propagation header for this thread's current span."""
        if not self.enabled:
            return None
        span = current_span()
        if span is None:
            return None
        return {HEADER_TRACE: span.trace_id, HEADER_SPAN: span.span_id}

    def note_crossing(self, count: int = 1) -> None:
        self.counters["crossings"] += count

    def graft(self, span_dicts: Sequence[dict]) -> None:
        """Attach finished worker span dicts under the current span."""
        if not span_dicts:
            return
        self.counters["worker_spans"] += len(span_dicts)
        span = current_span()
        if span is not None:
            span.children.extend(span_dicts)
        else:
            for entry in span_dicts:
                self.ring.append(entry)

    # ------------------------------------------------------------------ #
    # Recording
    # ------------------------------------------------------------------ #

    def _record_root(self, span: Span) -> None:
        entry = span.to_dict()
        self.ring.append(entry)
        if span.duration_ms >= self.slow_ms:
            self.counters["slow_ops"] += 1
            self.slow_log.append(entry)

    def traces(self) -> List[dict]:
        """Recent finished root spans, oldest first."""
        return list(self.ring)

    def slow_ops(self) -> List[dict]:
        return list(self.slow_log)

    def snapshot(self) -> Dict[str, int]:
        """The deterministic counter view, ``telemetry.``-ready."""
        return dict(self.counters)


#: The process-wide disabled tracer: every call is the no-op fast path.
NULL_TRACER = Tracer(enabled=False)


def child_span(name: str, tags: Optional[Dict[str, object]] = None):
    """A child of this thread's current span, from *any* layer.

    Lets deep call sites (op-log fsync, shm decode) trace themselves
    without holding a tracer reference: when no span is active — the
    overwhelmingly common case — this is one TLS read and returns the
    shared no-op span.
    """
    parent = current_span()
    if parent is None:
        return NULL_SPAN
    tracer = parent._tracer
    tracer.counters["spans"] += 1
    return Span(tracer, name, parent=parent, tags=tags)


def run_under(span, fn: Callable, *args, **kwargs):
    """Call ``fn`` with ``span`` as this thread's current span.

    The bridge for work handed to another thread (the server's executor
    calls): the target thread's TLS stack gets the span for the
    duration, so spans the engine opens inside land in the right tree.
    """
    if span is NULL_SPAN or span is None:
        return fn(*args, **kwargs)
    stack = _stack()
    stack.append(span)
    try:
        return fn(*args, **kwargs)
    finally:
        if stack and stack[-1] is span:
            stack.pop()


def render_trace(entry: dict, indent: str = "") -> str:
    """One span dict (with children) as an indented text tree."""
    tags = entry.get("tags") or {}
    tag_text = ""
    if tags:
        tag_text = " {%s}" % ", ".join(
            "%s=%s" % (key, tags[key]) for key in sorted(tags))
    lines = ["%s%s %.3fms%s" % (indent, entry.get("name", "?"),
                                entry.get("ms", 0.0), tag_text)]
    if indent == "":
        lines[0] = "trace %s: %s" % (entry.get("trace", "?"), lines[0])
    for child in entry.get("children", ()):
        lines.append(render_trace(child, indent + "  "))
    return "\n".join(lines)
