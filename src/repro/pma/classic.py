"""The classic (non-history-independent) packed-memory array baseline.

This is the standard density-threshold PMA of Itai, Konheim and Rodeh /
Bender, Demaine and Farach-Colton, which the paper compares against in its
experiments (Figure 2): the array is divided into ``Θ(log N)``-sized
segments; an implicit binary tree of windows sits above the segments; every
window has a depth-dependent density range, tighter near the root; an update
rebalances the smallest enclosing window whose density is within bounds, and
the whole array grows or shrinks when even the root violates its bounds.

The layout of a classic PMA depends heavily on the operation history — which
is exactly the behaviour the history-independent PMA removes — so this class
is also the "history-dependent control" used by the history-independence
audits in :mod:`repro.history`.

Costs: ``O(log² N)`` amortized element moves per update, ``O(1 + k/B)`` I/Os
for a range query of ``k`` elements.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Hashable, Iterator, List, Optional, Tuple

from repro.errors import ConfigurationError, InvariantViolation, RankError
from repro.memory.stats import IOStats
from repro.memory.tracker import IOTracker
from repro.pma.base import RankedSequence
from repro.pma.fenwick import FenwickTree


@dataclass(frozen=True)
class DensityThresholds:
    """Depth-interpolated density bounds of the classic PMA.

    ``max_root``/``max_leaf`` bound how *full* a window may be, ``min_root``/
    ``min_leaf`` bound how *empty* it may be; thresholds are linearly
    interpolated in the window's depth.  The defaults are the customary
    values from the PMA literature.
    """

    min_leaf: float = 0.08
    min_root: float = 0.30
    max_root: float = 0.70
    max_leaf: float = 0.92

    def __post_init__(self) -> None:
        ordered = (0.0 <= self.min_leaf <= self.min_root
                   < self.max_root <= self.max_leaf <= 1.0)
        if not ordered:
            raise ConfigurationError("density thresholds must satisfy "
                                     "0 <= min_leaf <= min_root < max_root <= max_leaf <= 1")

    def max_at(self, depth: int, height: int) -> float:
        """Upper density bound for a window at ``depth`` (root is depth 0)."""
        if height == 0:
            return self.max_leaf
        fraction = depth / height
        return self.max_root + (self.max_leaf - self.max_root) * fraction

    def min_at(self, depth: int, height: int) -> float:
        """Lower density bound for a window at ``depth`` (root is depth 0)."""
        if height == 0:
            return self.min_leaf
        fraction = depth / height
        return self.min_root - (self.min_root - self.min_leaf) * fraction


class ClassicPMA(RankedSequence):
    """Density-threshold packed-memory array (the non-HI baseline)."""

    SLOTS_ARRAY = "classic-pma-slots"

    def __init__(self, thresholds: Optional[DensityThresholds] = None,
                 tracker: Optional[IOTracker] = None,
                 array_name: Hashable = SLOTS_ARRAY) -> None:
        self.thresholds = thresholds or DensityThresholds()
        self._tracker = tracker
        #: The attached tracker, exposed for the unified ``io_stats()`` path.
        self.io_tracker = tracker
        self._array_name = array_name
        self.stats = IOStats()
        self._count = 0
        self._segment_size = 0
        self._num_segments = 0
        self._height = 0
        self._slots: List[Optional[object]] = []
        self._segment_counts = FenwickTree(1)
        self._rebuild([])

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #

    def __len__(self) -> int:
        return self._count

    def __iter__(self) -> Iterator[object]:
        for value in self._slots:
            if value is not None:
                yield value

    @property
    def capacity(self) -> int:
        """Total number of slots."""
        return len(self._slots)

    @property
    def segment_size(self) -> int:
        """Number of slots per segment."""
        return self._segment_size

    @property
    def num_segments(self) -> int:
        """Number of segments."""
        return self._num_segments

    def slots(self) -> Tuple[Optional[object], ...]:
        """A copy of the backing slot array (``None`` marks a gap)."""
        return tuple(self._slots)

    def memory_representation(self) -> Tuple[object, ...]:
        """The physical layout inspected by history-independence audits."""
        return (("slots", tuple(self._slots)),)

    def to_list(self) -> List[object]:
        """All elements in rank order."""
        return [value for value in self._slots if value is not None]

    # ------------------------------------------------------------------ #
    # Queries
    # ------------------------------------------------------------------ #

    def get(self, rank: int) -> object:
        """Return the element of rank ``rank`` (0-indexed)."""
        self._check_rank(rank, upper=self._count - 1)
        slot = self._slot_of_rank(rank)
        self._touch(slot, slot + 1, write=False)
        return self._slots[slot]

    def query(self, first: int, last: int) -> List[object]:
        """Return elements with ranks ``first..last`` inclusive (0-indexed)."""
        if self._count == 0:
            raise RankError("query on an empty PMA")
        self._check_rank(first, upper=self._count - 1)
        self._check_rank(last, upper=self._count - 1)
        if last < first:
            raise RankError("query range [%d, %d] is inverted" % (first, last))
        slot = self._slot_of_rank(first)
        wanted = last - first + 1
        result: List[object] = []
        scan = slot
        while len(result) < wanted and scan < len(self._slots):
            value = self._slots[scan]
            if value is not None:
                result.append(value)
            scan += 1
        self._touch(slot, scan, write=False)
        return result

    # ------------------------------------------------------------------ #
    # Updates
    # ------------------------------------------------------------------ #

    def insert(self, rank: int, item: object) -> None:
        """Insert ``item`` so that it becomes the element of rank ``rank``."""
        if item is None:
            raise ValueError("the PMA uses None to mark gaps; store a wrapper instead")
        self._check_rank(rank, upper=self._count)
        self.stats.operations += 1
        segment, within = self._locate_for_insert(rank)
        window_first, window_last = self._find_insert_window(segment)
        if window_first is None:
            # Even the root window is too dense: grow the array.
            items = self.to_list()
            items.insert(rank, item)
            self._count += 1
            self.stats.bump("classic.grow")
            self._rebuild(items)
            return
        self._count += 1
        self._rebalance_window(window_first, window_last,
                               insert=(segment, within, item))

    def delete(self, rank: int) -> object:
        """Delete and return the element of rank ``rank``."""
        if self._count == 0:
            raise RankError("delete on an empty PMA")
        self._check_rank(rank, upper=self._count - 1)
        self.stats.operations += 1
        segment, within = self._segment_counts.find_by_rank(rank + 1)
        removed = self._peek_segment_element(segment, within)
        window_first, window_last = self._find_delete_window(segment)
        if window_first is None:
            items = self.to_list()
            items.pop(rank)
            self._count -= 1
            self.stats.bump("classic.shrink")
            self._rebuild(items)
            return removed
        self._count -= 1
        self._rebalance_window(window_first, window_last,
                               delete=(segment, within))
        return removed

    # ------------------------------------------------------------------ #
    # Window selection
    # ------------------------------------------------------------------ #

    def _find_insert_window(self, segment: int) -> Tuple[Optional[int], Optional[int]]:
        """Smallest window containing ``segment`` that stays under its max density."""
        window_segments = 1
        while window_segments <= self._num_segments:
            first = (segment // window_segments) * window_segments
            last = first + window_segments - 1
            depth = self._height - int(math.log2(window_segments))
            elements = self._segment_counts.range_sum(first, last) + 1
            slots = window_segments * self._segment_size
            if elements <= self.thresholds.max_at(depth, self._height) * slots:
                return first, last
            window_segments *= 2
        return None, None

    def _find_delete_window(self, segment: int) -> Tuple[Optional[int], Optional[int]]:
        """Smallest window containing ``segment`` that stays above its min density."""
        window_segments = 1
        while window_segments <= self._num_segments:
            first = (segment // window_segments) * window_segments
            last = first + window_segments - 1
            depth = self._height - int(math.log2(window_segments))
            elements = self._segment_counts.range_sum(first, last) - 1
            slots = window_segments * self._segment_size
            if elements >= self.thresholds.min_at(depth, self._height) * slots:
                return first, last
            window_segments *= 2
        return None, None

    # ------------------------------------------------------------------ #
    # Rebalancing
    # ------------------------------------------------------------------ #

    def _rebalance_window(self, first_segment: int, last_segment: int,
                          insert: Optional[Tuple[int, int, object]] = None,
                          delete: Optional[Tuple[int, int]] = None) -> None:
        """Gather a window's elements, apply the pending update, spread evenly."""
        start = first_segment * self._segment_size
        stop = (last_segment + 1) * self._segment_size
        self._touch(start, stop, write=False)
        items: List[object] = []
        pending_insert_position = None
        if insert is not None:
            segment, within, _item = insert
            before = self._segment_counts.range_sum(first_segment, segment - 1)
            pending_insert_position = before + within - 1
        if delete is not None:
            segment, within = delete
            before = self._segment_counts.range_sum(first_segment, segment - 1)
            delete_position = before + within - 1
        for slot in range(start, stop):
            value = self._slots[slot]
            if value is not None:
                items.append(value)
        if insert is not None:
            items.insert(pending_insert_position, insert[2])
        if delete is not None:
            items.pop(delete_position)
        self._write_window(first_segment, last_segment, items)
        self.stats.bump("classic.rebalance")

    def _write_window(self, first_segment: int, last_segment: int,
                      items: List[object]) -> None:
        start = first_segment * self._segment_size
        stop = (last_segment + 1) * self._segment_size
        window_slots = stop - start
        if len(items) > window_slots:
            raise InvariantViolation("window overflow during rebalance")
        self._touch(start, stop, write=True)
        self._slots[start:stop] = [None] * window_slots
        count = len(items)
        for index, item in enumerate(items):
            offset = (index * window_slots) // count
            self._slots[start + offset] = item
        self.stats.element_moves += count
        if self._tracker is not None:
            self._tracker.record_moves(count)
        # Refresh the per-segment counts for the rewritten window.
        for segment in range(first_segment, last_segment + 1):
            seg_start = segment * self._segment_size
            seg_stop = seg_start + self._segment_size
            occupied = sum(1 for slot in range(seg_start, seg_stop)
                           if self._slots[slot] is not None)
            self._segment_counts.set(segment, occupied)

    def _rebuild(self, items: List[object]) -> None:
        """Resize the array for ``len(items)`` elements and spread them evenly."""
        self._count = len(items)
        capacity = self._choose_capacity(self._count)
        self._segment_size = self._choose_segment_size(capacity)
        self._num_segments = max(1, capacity // self._segment_size)
        self._height = int(math.log2(self._num_segments))
        self._slots = [None] * (self._num_segments * self._segment_size)
        self._segment_counts = FenwickTree(self._num_segments)
        if self._tracker is not None:
            self._tracker.invalidate_array(self._array_name, max(1, len(self._slots)))
        self.stats.bump("classic.rebuild")
        if items:
            self._write_window(0, self._num_segments - 1, items)

    @staticmethod
    def _choose_capacity(count: int) -> int:
        """Power-of-two capacity giving roughly 50% occupancy."""
        needed = max(8, 2 * count)
        return 1 << math.ceil(math.log2(needed))

    @staticmethod
    def _choose_segment_size(capacity: int) -> int:
        """Power-of-two segment size of roughly ``log2(capacity)`` slots."""
        target = max(2, math.ceil(math.log2(capacity)))
        return 1 << math.ceil(math.log2(target))

    # ------------------------------------------------------------------ #
    # Helpers
    # ------------------------------------------------------------------ #

    def _locate_for_insert(self, rank: int) -> Tuple[int, int]:
        """Segment and 1-indexed within-segment position for inserting at ``rank``."""
        if self._count == 0:
            return 0, 1
        if rank == self._count:
            # Append: goes after the last element of the last non-empty segment.
            segment, within = self._segment_counts.find_by_rank(self._count)
            return segment, within + 1
        segment, within = self._segment_counts.find_by_rank(rank + 1)
        return segment, within

    def _peek_segment_element(self, segment: int, within: int) -> object:
        start = segment * self._segment_size
        stop = start + self._segment_size
        seen = 0
        for slot in range(start, stop):
            value = self._slots[slot]
            if value is not None:
                seen += 1
                if seen == within:
                    return value
        raise InvariantViolation("segment %d has fewer than %d elements"
                                 % (segment, within))

    def _slot_of_rank(self, rank: int) -> int:
        segment, within = self._segment_counts.find_by_rank(rank + 1)
        start = segment * self._segment_size
        stop = start + self._segment_size
        seen = 0
        for slot in range(start, stop):
            if self._slots[slot] is not None:
                seen += 1
                if seen == within:
                    return slot
        raise InvariantViolation("rank %d not found in segment %d" % (rank, segment))

    def _touch(self, start: int, stop: int, write: bool) -> None:
        if self._tracker is not None:
            self._tracker.touch_range(self._array_name, start, stop, write=write)

    def _check_rank(self, rank: int, upper: int) -> None:
        if not isinstance(rank, int):
            raise RankError("rank must be an integer, got %r" % (rank,))
        if not 0 <= rank <= upper:
            raise RankError("rank %d out of range 0..%d" % (rank, upper))

    # ------------------------------------------------------------------ #
    # Validation
    # ------------------------------------------------------------------ #

    def check(self) -> None:
        """Verify internal consistency; raises :class:`InvariantViolation`."""
        stored = sum(1 for value in self._slots if value is not None)
        if stored != self._count:
            raise InvariantViolation("slot array holds %d elements, expected %d"
                                     % (stored, self._count))
        if self._segment_counts.total() != self._count:
            raise InvariantViolation("segment counts sum to %d, expected %d"
                                     % (self._segment_counts.total(), self._count))
        for segment in range(self._num_segments):
            start = segment * self._segment_size
            stop = start + self._segment_size
            occupied = sum(1 for slot in range(start, stop)
                           if self._slots[slot] is not None)
            if occupied != self._segment_counts.value(segment):
                raise InvariantViolation(
                    "segment %d holds %d elements but the count tree says %d"
                    % (segment, occupied, self._segment_counts.value(segment)))
