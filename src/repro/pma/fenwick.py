"""A Fenwick (binary indexed) tree over per-segment element counts.

The classic PMA baseline needs to translate a global rank into (segment,
within-segment rank) and to keep those counts up to date as rebalances move
elements between segments.  A Fenwick tree gives prefix sums and updates in
``O(log n)`` and supports the prefix-search needed for rank lookups.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

from repro.errors import RankError


class FenwickTree:
    """Prefix sums over a fixed-length array of non-negative integers."""

    def __init__(self, size: int) -> None:
        if size <= 0:
            raise ValueError("size must be positive, got %r" % (size,))
        self._size = size
        self._tree: List[int] = [0] * (size + 1)
        self._values: List[int] = [0] * size

    def __len__(self) -> int:
        return self._size

    @classmethod
    def from_values(cls, values: Sequence[int]) -> "FenwickTree":
        """Build a tree initialised with ``values``."""
        tree = cls(len(values))
        for index, value in enumerate(values):
            tree.set(index, value)
        return tree

    def value(self, index: int) -> int:
        """Current value at ``index``."""
        return self._values[index]

    def values(self) -> List[int]:
        """All current values."""
        return list(self._values)

    def add(self, index: int, delta: int) -> None:
        """Add ``delta`` to the value at ``index``."""
        if not 0 <= index < self._size:
            raise IndexError("index %r out of range" % (index,))
        self._values[index] += delta
        position = index + 1
        while position <= self._size:
            self._tree[position] += delta
            position += position & (-position)

    def set(self, index: int, value: int) -> None:
        """Overwrite the value at ``index``."""
        self.add(index, value - self._values[index])

    def prefix_sum(self, count: int) -> int:
        """Sum of the first ``count`` values."""
        if not 0 <= count <= self._size:
            raise IndexError("count %r out of range" % (count,))
        total = 0
        position = count
        while position > 0:
            total += self._tree[position]
            position -= position & (-position)
        return total

    def total(self) -> int:
        """Sum of all values."""
        return self.prefix_sum(self._size)

    def range_sum(self, first: int, last: int) -> int:
        """Sum of values at indices ``first..last`` inclusive."""
        if last < first:
            return 0
        return self.prefix_sum(last + 1) - self.prefix_sum(first)

    def find_by_rank(self, rank: int) -> Tuple[int, int]:
        """Locate the bucket containing the element of 1-indexed ``rank``.

        Returns ``(index, within_rank)`` where ``within_rank`` is 1-indexed
        within the bucket.  Runs in ``O(log n)``.
        """
        total = self.total()
        if not 1 <= rank <= total:
            raise RankError("rank %r out of range 1..%d" % (rank, total))
        index = 0
        remaining = rank
        bit = 1
        while bit * 2 <= self._size:
            bit *= 2
        while bit > 0:
            candidate = index + bit
            if candidate <= self._size and self._tree[candidate] < remaining:
                index = candidate
                remaining -= self._tree[candidate]
            bit //= 2
        return index, remaining
