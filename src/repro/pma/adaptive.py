"""An adaptive packed-memory array (Bender and Hu) — the other PMA baseline.

The adaptive PMA [Bender & Hu, *An adaptive packed-memory array*, TODS 2007 —
reference 18 of the paper] improves on the classic PMA for non-uniform insert
patterns: instead of spreading elements *evenly* during a rebalance, it
predicts where the next insertions will land (from where the recent ones
landed) and reserves extra gaps there, so sequential or clustered ingest
triggers far fewer rebalances.

This implementation keeps the classic PMA's window/density machinery
(:class:`repro.pma.classic.ClassicPMA`) and replaces the rebalance's
spreading rule:

* a small **predictor** tracks the most recently inserted elements ("marker"
  elements) with exponentially decaying hit counts, and
* when a window is rewritten, every element gets a weight of 1 plus a boost
  proportional to its marker count; elements are placed at the *middle* of
  their weight bucket, so the reserved slack straddles the marker — the next
  insert of an ascending run lands just after it, of a descending
  (front-hammering) run just before it, and either way finds room without
  triggering another rebalance.

Why it is here: the adaptive PMA is the strongest non-HI sparse-table
baseline for the skewed workloads in ``repro.workloads.patterns``, and it is
also the *most* history-dependent of the PMAs (its layout literally encodes a
prediction of the future derived from the past), which makes it the sharpest
negative control for the history-independence audits and observer attacks.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Hashable, List, Optional

from repro.errors import ConfigurationError, InvariantViolation
from repro.memory.tracker import IOTracker
from repro.pma.classic import ClassicPMA, DensityThresholds


@dataclass
class _Marker:
    """Bookkeeping for one predicted insertion hot spot."""

    hits: float
    last_seen: int


class InsertPredictor:
    """Tracks recent insertion neighbourhoods with decaying counts.

    The predictor remembers up to ``max_markers`` recently inserted elements.
    Every new insertion adds (or refreshes) a marker with one hit and decays
    all other markers by ``decay``; markers whose weight falls below a small
    threshold are evicted, as is the stalest marker when the table is full.
    """

    def __init__(self, max_markers: int = 16, decay: float = 0.9) -> None:
        if max_markers < 1:
            raise ConfigurationError("max_markers must be at least 1")
        if not 0.0 < decay <= 1.0:
            raise ConfigurationError("decay must be in (0, 1]")
        self.max_markers = max_markers
        self.decay = decay
        self._markers: Dict[object, _Marker] = {}
        self._clock = 0

    def __len__(self) -> int:
        return len(self._markers)

    def record(self, item: object) -> None:
        """Register that ``item`` was just inserted."""
        self._clock += 1
        for key in list(self._markers):
            marker = self._markers[key]
            marker.hits *= self.decay
            if marker.hits < 0.05:
                del self._markers[key]
        try:
            existing = self._markers.get(item)
        except TypeError:  # unhashable payloads simply are not tracked
            return
        if existing is not None:
            existing.hits += 1.0
            existing.last_seen = self._clock
        else:
            if len(self._markers) >= self.max_markers:
                stalest = min(self._markers, key=lambda key: self._markers[key].last_seen)
                del self._markers[stalest]
            self._markers[item] = _Marker(hits=1.0, last_seen=self._clock)

    def boost(self, item: object) -> float:
        """Extra gap weight reserved just before ``item`` (0 for non-markers)."""
        try:
            marker = self._markers.get(item)
        except TypeError:
            return 0.0
        return 0.0 if marker is None else marker.hits

    def markers(self) -> Dict[object, float]:
        """Current marker elements and their hit counts (for tests/inspection)."""
        return {key: marker.hits for key, marker in self._markers.items()}


class AdaptivePMA(ClassicPMA):
    """A packed-memory array with predictor-guided (uneven) rebalances.

    Parameters
    ----------
    thresholds, tracker, array_name:
        As for :class:`repro.pma.classic.ClassicPMA`.
    max_markers, decay:
        Predictor size and decay rate; see :class:`InsertPredictor`.
    marker_boost:
        Gap weight reserved per predictor hit.  0 disables adaptivity (the
        structure then behaves exactly like the classic PMA), larger values
        reserve more slack at the predicted hot spots.
    """

    SLOTS_ARRAY = "adaptive-pma-slots"

    def __init__(self, thresholds: Optional[DensityThresholds] = None,
                 tracker: Optional[IOTracker] = None,
                 array_name: Hashable = SLOTS_ARRAY,
                 max_markers: int = 16,
                 decay: float = 0.9,
                 marker_boost: float = 4.0) -> None:
        if marker_boost < 0:
            raise ConfigurationError("marker_boost must be non-negative")
        self.predictor = InsertPredictor(max_markers=max_markers, decay=decay)
        self.marker_boost = marker_boost
        super().__init__(thresholds=thresholds, tracker=tracker,
                         array_name=array_name)

    # ------------------------------------------------------------------ #
    # Updates
    # ------------------------------------------------------------------ #

    def insert(self, rank: int, item: object) -> None:
        """Insert ``item`` at ``rank`` and feed the predictor."""
        self.predictor.record(item)
        super().insert(rank, item)

    # ------------------------------------------------------------------ #
    # Uneven spreading
    # ------------------------------------------------------------------ #

    def _write_window(self, first_segment: int, last_segment: int,
                      items: List[object]) -> None:
        """Spread ``items`` across the window proportionally to predictor weights."""
        start = first_segment * self._segment_size
        stop = (last_segment + 1) * self._segment_size
        window_slots = stop - start
        count = len(items)
        if count > window_slots:
            raise InvariantViolation("window overflow during adaptive rebalance")
        self._touch(start, stop, write=True)
        self._slots[start:stop] = [None] * window_slots
        if count:
            weights = [1.0 + self.marker_boost * self.predictor.boost(item)
                       for item in items]
            total = sum(weights)
            cumulative = 0.0
            previous_slot = -1
            for index, item in enumerate(items):
                # Each element sits at the middle of its weight bucket, so its
                # reserved slack straddles it: front-hammering runs find room
                # just before the marker, ascending runs just after it.
                offset = int((cumulative + weights[index] / 2.0)
                             * window_slots / total)
                cumulative += weights[index]
                offset = max(offset, previous_slot + 1)
                offset = min(offset, window_slots - (count - index))
                self._slots[start + offset] = item
                previous_slot = offset
        self.stats.element_moves += count
        if self._tracker is not None:
            self._tracker.record_moves(count)
        self.stats.bump("adaptive.uneven_rebalance")
        for segment in range(first_segment, last_segment + 1):
            seg_start = segment * self._segment_size
            seg_stop = seg_start + self._segment_size
            occupied = sum(1 for slot in range(seg_start, seg_stop)
                           if self._slots[slot] is not None)
            self._segment_counts.set(segment, occupied)
