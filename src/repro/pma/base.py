"""Abstract interface shared by the rank-addressed sparse tables.

Both :class:`repro.core.hi_pma.HistoryIndependentPMA` and
:class:`repro.pma.classic.ClassicPMA` expose the same rank-addressed API
(``Insert(i, x)``, ``Delete(i)``, ``Query(i, j)`` from Section 3 of the
paper), so benches and examples can swap one for the other.  The interface is
captured here as an abstract base class used for documentation, isinstance
checks, and shared convenience methods.
"""

from __future__ import annotations

import abc
from typing import Iterator, List, Sequence


class RankedSequence(abc.ABC):
    """A dynamic sequence addressed by rank, stored in a sparse array."""

    @abc.abstractmethod
    def __len__(self) -> int:
        """Number of stored elements."""

    @abc.abstractmethod
    def insert(self, rank: int, item: object) -> None:
        """Insert ``item`` so that it becomes the element of rank ``rank``."""

    @abc.abstractmethod
    def delete(self, rank: int) -> object:
        """Remove and return the element of rank ``rank``."""

    @abc.abstractmethod
    def get(self, rank: int) -> object:
        """Return the element of rank ``rank``."""

    @abc.abstractmethod
    def query(self, first: int, last: int) -> List[object]:
        """Return elements with ranks ``first..last`` inclusive."""

    @abc.abstractmethod
    def slots(self) -> Sequence[object]:
        """The backing slot array, with ``None`` marking gaps."""

    def append(self, item: object) -> None:
        """Insert ``item`` after the current last element."""
        self.insert(len(self), item)

    def extend(self, items: Sequence[object]) -> None:
        """Append every item of ``items`` in order."""
        for item in items:
            self.append(item)

    def to_list(self) -> List[object]:
        """All elements in rank order."""
        return [value for value in self.slots() if value is not None]

    def __iter__(self) -> Iterator[object]:
        return iter(self.to_list())


# Register the HI PMA as a virtual subclass lazily to avoid an import cycle.
def _register_hi_pma() -> None:
    from repro.core.hi_pma import HistoryIndependentPMA

    RankedSequence.register(HistoryIndependentPMA)


_register_hi_pma()
