"""Packed-memory-array interfaces and the non-history-independent baseline.

The history-independent PMA itself lives in :mod:`repro.core.hi_pma`; this
package holds the abstract rank-addressed interface shared by both PMAs and
the classic density-threshold PMA used as the comparison baseline in the
paper's experiments (Figure 2).
"""

from repro.pma.base import RankedSequence
from repro.pma.classic import ClassicPMA
from repro.pma.adaptive import AdaptivePMA, InsertPredictor

__all__ = ["RankedSequence", "ClassicPMA", "AdaptivePMA", "InsertPredictor"]
