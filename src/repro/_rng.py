"""Seeded randomness helpers shared by the randomized structures.

All randomized structures in this library accept either an integer seed or a
ready-made :class:`random.Random` instance.  Centralising the coercion here
keeps constructors short and guarantees the library never touches the global
``random`` module state, which matters both for reproducible experiments and
for the history-independence audits (which need many *independent* samples of
a structure's memory representation).
"""

from __future__ import annotations

import random
from typing import Optional, Union

RandomLike = Union[int, random.Random, None]


def make_rng(seed: RandomLike = None) -> random.Random:
    """Return a private ``random.Random`` instance.

    ``seed`` may be ``None`` (fresh OS entropy), an ``int`` (deterministic
    stream), or an existing ``random.Random`` (used as-is, shared with the
    caller).
    """
    if isinstance(seed, random.Random):
        return seed
    return random.Random(seed)


def spawn_rng(rng: random.Random) -> random.Random:
    """Derive an independent child generator from ``rng``.

    The child is seeded from the parent's stream, so a structure that owns
    several internal random consumers can give each a private generator while
    staying reproducible from a single top-level seed.
    """
    return random.Random(rng.getrandbits(64))


def geometric_level(rng: random.Random, promote_probability: float,
                    max_level: Optional[int] = None) -> int:
    """Sample the level of a skip-list element.

    Returns the number of consecutive successful promotions (heads) before the
    first failure when flipping a coin with success probability
    ``promote_probability``.  Level 0 means the element lives only in the base
    list.  ``max_level`` optionally caps the result (useful to bound memory in
    adversarially unlucky runs).
    """
    if not 0.0 < promote_probability < 1.0:
        raise ValueError("promote_probability must be in (0, 1), got %r"
                         % (promote_probability,))
    level = 0
    while rng.random() < promote_probability:
        level += 1
        if max_level is not None and level >= max_level:
            return max_level
    return level
