"""A blocked treap in the spirit of Golovin's B-treap.

Golovin's B-treap [Golovin 2009] is a strongly history-independent
external-memory dictionary: it stores the uniquely represented treap shape on
disk, grouped into blocks, so that dictionary operations cost ``O(log_B N)``
I/Os in expectation.  The original construction maintains the grouping with
an intricate incremental algorithm; Golovin himself notes it is "complicated
and difficult to implement", which is what motivated his simpler B-skip list
and, in turn, this paper's weakly history-independent structures.

This module implements the *stratified* variant of the idea, which keeps the
essential properties while staying implementable and auditable:

* Keys receive salted-hash priorities exactly as in :class:`repro.treap.Treap`,
  so the treap shape is a canonical function of the key set and the salt.
* The tree is cut into horizontal strata of ``L = max(1, ⌊log₂(B + 1)⌋)``
  consecutive levels.  The maximal sub-treap rooted at a node whose depth is a
  multiple of ``L`` and truncated after ``L`` levels forms one *block*; it
  contains at most ``2^L − 1 ≤ B`` nodes.  Because the cut depends only on the
  shape, the block decomposition — and hence the entire on-disk
  representation — is canonical, preserving strong history independence.
* A root-to-node path of depth ``d`` crosses ``⌈d / L⌉`` blocks, so with the
  expected ``O(log N)`` treap depth a search costs ``O(log N / log B) =
  O(log_B N)`` expected I/Os, matching Golovin's bound.  The worst-case and
  high-probability behaviour is *not* ``O(log_B N)`` — which is exactly the
  gap (Lemma 15 territory) the paper's HI skip list closes — and the
  comparison bench demonstrates it.

I/O accounting: every operation charges one read per distinct block on the
search path and, for updates, one write per block on the path from the root
to the affected node (rotations only restructure nodes on that path, and a
block is rewritten at most once per operation).
"""

from __future__ import annotations

import math
from typing import Dict, Iterator, List, Optional, Tuple

from repro._rng import RandomLike
from repro.api.protocol import HIDictionary
from repro.errors import ConfigurationError, DuplicateKey, InvariantViolation, KeyNotFound
from repro.memory.stats import IOStats
from repro.treap.treap import Treap, TreapNode


class BTreap(HIDictionary):
    """A strongly history-independent external-memory dictionary.

    Parameters
    ----------
    block_size:
        The DAM block size ``B`` (number of key/value pairs per block).
    seed:
        Seed for the priority salt; two B-treaps with the same seed and the
        same contents have identical block layouts.
    """

    def __init__(self, block_size: int = 64, seed: RandomLike = None) -> None:
        if block_size < 2:
            raise ConfigurationError("block_size must be at least 2, got %r"
                                     % (block_size,))
        self.block_size = block_size
        self.levels_per_block = max(1, int(math.floor(math.log2(block_size + 1))))
        self._treap = Treap(seed=seed)
        self.stats = IOStats()

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #

    def __len__(self) -> int:
        return len(self._treap)

    def __contains__(self, key: object) -> bool:
        return self.contains(key)

    def __iter__(self) -> Iterator[object]:
        """Iterate over the keys in increasing order (not I/O-charged)."""
        return iter(self._treap)

    def items(self) -> List[Tuple[object, object]]:
        """All (key, value) pairs in key order (not I/O-charged)."""
        return self._treap.items()

    @property
    def height(self) -> int:
        """Height of the underlying treap (number of node levels)."""
        return self._treap.height

    @property
    def block_height(self) -> int:
        """Number of block strata a root-to-deepest-leaf path crosses."""
        height = self._treap.height
        return 0 if height == 0 else math.ceil(height / self.levels_per_block)

    def audit_fingerprint(self) -> object:
        """The treap height (see :meth:`repro.treap.treap.Treap.audit_fingerprint`)."""
        return self.height

    def num_blocks(self) -> int:
        """Number of blocks in the current canonical decomposition."""
        return len(self.block_map())

    def block_map(self) -> Dict[object, List[object]]:
        """The canonical block decomposition: block-root key → keys in the block.

        The decomposition is a pure function of the treap shape, so two
        B-treaps with equal salt and contents return equal maps; the history
        audits rely on this.
        """
        blocks: Dict[object, List[object]] = {}

        def visit(node: Optional[TreapNode], depth: int, block_root: object) -> None:
            if node is None:
                return
            if depth % self.levels_per_block == 0:
                block_root = node.key
                blocks[block_root] = []
            blocks[block_root].append(node.key)
            visit(node.left, depth + 1, block_root)
            visit(node.right, depth + 1, block_root)

        visit(self._treap.root, 0, None)
        for keys in blocks.values():
            keys.sort()
        return blocks

    def memory_representation(self) -> Tuple[object, ...]:
        """Canonical on-disk representation: blocks in key order of their roots."""
        blocks = self.block_map()
        return tuple(
            (root, tuple(keys)) for root, keys in sorted(blocks.items(),
                                                         key=lambda item: item[0])
        )

    # ------------------------------------------------------------------ #
    # Queries
    # ------------------------------------------------------------------ #

    def contains(self, key: object) -> bool:
        """Whether ``key`` is stored (charges the search I/Os)."""
        depth = self._probe_depth(key)
        self._charge_path_reads(depth)
        return self._treap.contains(key)

    def search(self, key: object) -> object:
        """Value stored under ``key``; raises :class:`KeyNotFound` otherwise."""
        depth = self._probe_depth(key)
        self._charge_path_reads(depth)
        return self._treap.search(key)

    def search_io_cost(self, key: object) -> int:
        """Number of read I/Os a search for ``key`` performs."""
        before = self.stats.reads
        self.contains(key)
        return self.stats.reads - before

    def range_query(self, low: object, high: object) -> List[Tuple[object, object]]:
        """All (key, value) pairs with ``low <= key <= high`` in key order.

        Charges one read per distinct block containing a reported pair or
        lying on the search paths to the range endpoints.
        """
        result = self._treap.range_query(low, high)
        blocks = self._blocks_touched_by_range(low, high)
        self.stats.reads += max(1, blocks) if self._treap.root is not None else 0
        return result

    # ------------------------------------------------------------------ #
    # Updates
    # ------------------------------------------------------------------ #

    def insert(self, key: object, value: object = None) -> None:
        """Insert a new key; raises :class:`DuplicateKey` if it already exists."""
        if self._treap.contains(key):
            self._charge_path_reads(self._probe_depth(key))
            raise DuplicateKey(key)
        self._charge_path_reads(self._probe_depth(key))
        self._treap.insert(key, value)
        self._charge_path_writes(self._treap.depth_of(key))
        self.stats.operations += 1

    def upsert(self, key: object, value: object = None) -> bool:
        """Insert or overwrite ``key``; returns ``True`` if it already existed."""
        if self._treap.contains(key):
            self._charge_path_reads(self._treap.depth_of(key))
            self._treap.upsert(key, value)
            self._charge_path_writes(self._treap.depth_of(key))
            return True
        self.insert(key, value)
        return False

    def delete(self, key: object) -> object:
        """Remove ``key`` and return its value; raises :class:`KeyNotFound` otherwise."""
        if not self._treap.contains(key):
            self._charge_path_reads(self._probe_depth(key))
            raise KeyNotFound(key)
        depth = self._treap.depth_of(key)
        self._charge_path_reads(depth)
        value = self._treap.delete(key)
        # Deleting rotates the node down to a leaf before unlinking it, so the
        # modified nodes span the old path extended to the bottom stratum.
        self._charge_path_writes(max(depth, self._treap.height))
        self.stats.operations += 1
        return value

    # ------------------------------------------------------------------ #
    # I/O accounting helpers
    # ------------------------------------------------------------------ #

    def blocks_on_path(self, depth: int) -> int:
        """Number of blocks a root-to-depth-``depth`` path crosses (depth 1-indexed)."""
        if depth <= 0:
            return 0
        return math.ceil(depth / self.levels_per_block)

    def _probe_depth(self, key: object) -> int:
        """Depth reached when searching for ``key`` (number of nodes visited)."""
        return self._treap.search_comparisons(key)

    def _charge_path_reads(self, depth: int) -> None:
        # Even probing an empty dictionary reads the (empty) root block.
        self.stats.reads += max(1, self.blocks_on_path(depth))

    def _charge_path_writes(self, depth: int) -> None:
        self.stats.writes += max(1, self.blocks_on_path(depth))

    def _blocks_touched_by_range(self, low: object, high: object) -> int:
        """Count distinct blocks holding keys in ``[low, high]`` plus the endpoints' paths."""
        touched = set()

        def visit(node: Optional[TreapNode], depth: int, block_root: object) -> None:
            if node is None:
                return
            if depth % self.levels_per_block == 0:
                block_root = node.key
            intersects = low <= node.key <= high
            if intersects:
                touched.add(block_root)
            if node.key > low:
                visit(node.left, depth + 1, block_root)
            if node.key < high:
                visit(node.right, depth + 1, block_root)

        visit(self._treap.root, 0, None)
        endpoint_blocks = self.blocks_on_path(self._probe_depth(low)) \
            + self.blocks_on_path(self._probe_depth(high))
        return len(touched) + endpoint_blocks

    # ------------------------------------------------------------------ #
    # Validation
    # ------------------------------------------------------------------ #

    def check(self) -> None:
        """Verify treap invariants and the block-size bound."""
        self._treap.check()
        for root, keys in self.block_map().items():
            limit = (1 << self.levels_per_block) - 1
            if len(keys) > limit:
                raise InvariantViolation(
                    "block rooted at %r holds %d nodes, stratum limit is %d"
                    % (root, len(keys), limit))
            if limit > self.block_size and len(keys) > self.block_size:
                raise InvariantViolation(
                    "block rooted at %r exceeds the device block size" % (root,))
