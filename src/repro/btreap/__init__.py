"""The B-treap: a strongly history-independent external-memory dictionary.

Golovin's B-treap is the prior work the paper positions its own structures
against: it supports B-tree operations with ``O(log_B N)`` I/Os *in
expectation* while being uniquely represented (hence strongly history
independent), but it is considerably more complicated than the paper's weakly
history-independent alternatives and its guarantees do not hold with high
probability.

:class:`~repro.btreap.btreap.BTreap` packs the uniquely represented treap of
:mod:`repro.treap` into disk blocks by cutting the tree into strata of
``⌊log₂(B + 1)⌋`` consecutive levels, so each block stores one sub-treap of at
most ``B`` nodes and a root-to-leaf search touches ``O(depth / log B)``
blocks.  The packing is a deterministic function of the treap shape, so the
whole on-disk representation remains canonical.  DESIGN.md documents how this
construction relates to (and simplifies) Golovin's original one.
"""

from repro.btreap.btreap import BTreap

__all__ = ["BTreap"]
