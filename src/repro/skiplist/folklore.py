"""The folklore B-skip list (promotion probability 1/B).

The folklore way to move a skip list to external memory is to promote each
element with probability ``1/B`` instead of ``1/2``, so that consecutive
unpromoted elements form arrays of expected length ``B`` that fit in a block.
Searches then cost ``O(log_B N)`` I/Os *in expectation*.

Lemma 15 of the paper shows the catch: with high probability there are
``Ω(√(N·B))`` elements whose search costs ``Ω(log(N/B))`` I/Os, because some
arrays grow to length ``Θ(B log N)``.  The high-probability bounds are
therefore no better than running an in-memory skip list on disk.  This class
exists to exhibit that tail empirically (``benchmarks/bench_bskiplist_tail.py``).

The structure is key-addressed and supports search, insert, delete and range
queries; leaf arrays are packed densely into blocks (the folklore variant
keeps no gaps), so a scan of an array of ``n`` keys costs ``⌈n/B⌉`` I/Os.
"""

from __future__ import annotations

import bisect
import math
from typing import Iterator, List, Tuple

from repro._rng import RandomLike, geometric_level, make_rng
from repro.api.protocol import HIDictionary
from repro.errors import ConfigurationError, DuplicateKey, InvariantViolation, KeyNotFound
from repro.memory.stats import IOStats
from repro.skiplist.levels import FRONT, SkipListLevels


class FolkloreBSkipList(HIDictionary):
    """External-memory skip list with promotion probability ``1/B``."""

    def __init__(self, block_size: int = 64, seed: RandomLike = None,
                 max_level: int = 16) -> None:
        if block_size < 2:
            raise ConfigurationError("block_size must be at least 2, got %r"
                                     % (block_size,))
        self.block_size = block_size
        self.promote_probability = 1.0 / block_size
        self.max_level = max_level
        self._rng = make_rng(seed)
        self._keys: List[object] = []
        self._values = {}
        self._levels = SkipListLevels()
        self.stats = IOStats()

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #

    def __len__(self) -> int:
        return len(self._keys)

    def __contains__(self, key: object) -> bool:
        return self.contains(key)

    def __iter__(self) -> Iterator[object]:
        return iter(list(self._keys))

    @property
    def height(self) -> int:
        """Highest non-empty promotion level."""
        return self._levels.height

    def level_of(self, key: object) -> int:
        """Promotion level of ``key`` (0 if never promoted)."""
        return self._levels.level_of(key)

    def items(self) -> List[Tuple[object, object]]:
        """All (key, value) pairs in key order (not I/O-charged)."""
        return [(key, self._values[key]) for key in self._keys]

    def leaf_array_sizes(self) -> List[int]:
        """Sizes of the leaf arrays (runs delimited by promoted elements)."""
        boundaries = self._levels.members(1)
        sizes: List[int] = []
        previous = 0
        for boundary in boundaries:
            position = bisect.bisect_left(self._keys, boundary)
            if position > previous:
                sizes.append(position - previous)
            previous = position
        if len(self._keys) > previous:
            sizes.append(len(self._keys) - previous)
        return sizes

    # ------------------------------------------------------------------ #
    # Queries
    # ------------------------------------------------------------------ #

    def contains(self, key: object) -> bool:
        """Whether ``key`` is stored (charges search I/Os)."""
        self.search_io_cost(key, charge=True)
        position = bisect.bisect_left(self._keys, key)
        return position < len(self._keys) and self._keys[position] == key

    def search(self, key: object) -> object:
        """Value stored under ``key``; raises :class:`KeyNotFound` otherwise."""
        if not self.contains(key):
            raise KeyNotFound(key)
        return self._values[key]

    def search_io_cost(self, key: object, charge: bool = False) -> int:
        """I/Os of a search for ``key`` (scanning arrays level by level)."""
        ios = 0
        steps = self._levels.descend(key)
        for step in steps:
            ios += self._blocks(step.scanned)
        anchor = steps[-1].anchor if steps else FRONT
        ios += self._blocks(max(1, self._leaf_array_length(anchor)))
        if charge:
            self.stats.reads += ios
        return ios

    def range_query(self, low: object, high: object) -> Tuple[List[Tuple[object, object]], int]:
        """All pairs with ``low <= key <= high`` plus the I/O cost of the scan."""
        if high < low:
            return [], 0
        ios = self.search_io_cost(low, charge=True)
        first = bisect.bisect_left(self._keys, low)
        last = bisect.bisect_right(self._keys, high)
        selected = self._keys[first:last]
        # Every leaf array touched by the scan starts a new block.
        boundaries = [key for key in self._levels.members(1) if low < key <= high]
        scan_ios = self._blocks(len(selected)) + len(boundaries)
        self.stats.reads += scan_ios
        return [(key, self._values[key]) for key in selected], ios + scan_ios

    # ------------------------------------------------------------------ #
    # Updates
    # ------------------------------------------------------------------ #

    def insert(self, key: object, value: object = None) -> int:
        """Insert a new key; returns the I/O cost charged for the operation."""
        position = bisect.bisect_left(self._keys, key)
        if position < len(self._keys) and self._keys[position] == key:
            raise DuplicateKey(key)
        ios = self.search_io_cost(key, charge=True)
        level = geometric_level(self._rng, self.promote_probability,
                                max_level=self.max_level)
        self._keys.insert(position, key)
        self._values[key] = value
        if level > 0:
            self._levels.add(key, level)
        anchor = self._levels.predecessor(1, key)
        write_ios = self._blocks(max(1, self._leaf_array_length(anchor))) + level
        self.stats.writes += write_ios
        self.stats.operations += 1
        return ios + write_ios

    def upsert(self, key: object, value: object = None) -> bool:
        """Insert or overwrite ``key``; returns ``True`` if it already existed.

        An overwrite costs the search plus one leaf-array rewrite; the key
        layout and promotion levels are untouched.
        """
        position = bisect.bisect_left(self._keys, key)
        if position < len(self._keys) and self._keys[position] == key:
            self.search_io_cost(key, charge=True)
            self._values[key] = value
            anchor = self._levels.predecessor(1, key)
            self.stats.writes += self._blocks(max(1, self._leaf_array_length(anchor)))
            self.stats.operations += 1
            return True
        self.insert(key, value)
        return False

    def delete(self, key: object) -> object:
        """Remove ``key`` and return its value; raises :class:`KeyNotFound` otherwise."""
        position = bisect.bisect_left(self._keys, key)
        if position >= len(self._keys) or self._keys[position] != key:
            raise KeyNotFound(key)
        ios = self.search_io_cost(key, charge=True)
        del ios  # the read cost is already charged to stats
        level = self._levels.remove(key)
        self._keys.pop(position)
        value = self._values.pop(key)
        anchor = self._levels.predecessor(1, key)
        write_ios = self._blocks(max(1, self._leaf_array_length(anchor))) + level
        self.stats.writes += write_ios
        self.stats.operations += 1
        return value

    # ------------------------------------------------------------------ #
    # Internals
    # ------------------------------------------------------------------ #

    def _blocks(self, slots: int) -> int:
        return max(1, math.ceil(slots / self.block_size))

    def _leaf_array_length(self, start: object) -> int:
        """Number of keys in the leaf array starting at ``start`` (or FRONT)."""
        begin = 0 if start is FRONT else bisect.bisect_left(self._keys, start)
        boundaries = self._levels.members(1)
        if start is FRONT:
            next_position = 0
        else:
            next_position = bisect.bisect_right(boundaries, start)
        if next_position < len(boundaries):
            end = bisect.bisect_left(self._keys, boundaries[next_position])
        else:
            end = len(self._keys)
        return max(0, end - begin)

    # ------------------------------------------------------------------ #
    # Validation
    # ------------------------------------------------------------------ #

    def check(self) -> None:
        """Verify ordering and level nesting; raises :class:`InvariantViolation`."""
        if self._keys != sorted(self._keys):
            raise InvariantViolation("leaf keys are not sorted")
        if len(self._keys) != len(self._values):
            raise InvariantViolation("key list and value map disagree")
        try:
            self._levels.check()
        except ValueError as error:
            raise InvariantViolation(str(error)) from error
        for level in range(1, self._levels.height + 1):
            for key in self._levels.members(level):
                if key not in self._values:
                    raise InvariantViolation("promoted key %r is not stored" % (key,))
