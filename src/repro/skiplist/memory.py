"""Pugh's classic in-memory skip list (promotion probability 1/2).

Skip lists are one of the original weakly history-independent structures:
their pointer topology depends only on the stored keys and per-key coin
flips.  The paper uses the in-memory skip list in two roles:

* as the natural baseline that the external-memory variants must beat — a
  pointer-based skip list "run in external memory" pays one block transfer
  per pointer hop, i.e. ``Θ(log N)`` I/Os per search;
* as the reference point for Lemma 15: the folklore B-skip list's
  high-probability bounds are no better than this baseline.

Each node is assumed to occupy its own disk block, so the I/O cost of an
operation is simply the number of node visits.
"""

from __future__ import annotations

from typing import Iterator, List, Optional, Tuple

from repro._rng import RandomLike, geometric_level, make_rng
from repro.api.protocol import HIDictionary
from repro.errors import DuplicateKey, InvariantViolation, KeyNotFound
from repro.memory.stats import IOStats


class _Node:
    """A skip-list node with one forward pointer per level it appears in."""

    __slots__ = ("key", "value", "forward")

    def __init__(self, key: object, value: object, height: int) -> None:
        self.key = key
        self.value = value
        self.forward: List[Optional["_Node"]] = [None] * height


class MemorySkipList(HIDictionary):
    """Classic skip list with key/value pairs and I/O-as-node-visits accounting."""

    def __init__(self, promote_probability: float = 0.5,
                 seed: RandomLike = None, max_level: int = 64) -> None:
        self._rng = make_rng(seed)
        self.promote_probability = promote_probability
        self.max_level = max_level
        self._head = _Node(None, None, max_level + 1)
        self._level = 0
        self._count = 0
        self.stats = IOStats()

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #

    def __len__(self) -> int:
        return self._count

    def __contains__(self, key: object) -> bool:
        return self.contains(key)

    def __iter__(self) -> Iterator[object]:
        """Iterate over keys in increasing order (not I/O-charged)."""
        node = self._head.forward[0]
        while node is not None:
            yield node.key
            node = node.forward[0]

    def items(self) -> List[Tuple[object, object]]:
        """All (key, value) pairs in key order (not I/O-charged)."""
        result = []
        node = self._head.forward[0]
        while node is not None:
            result.append((node.key, node.value))
            node = node.forward[0]
        return result

    @property
    def height(self) -> int:
        """Current number of levels in use."""
        return self._level + 1

    def level_of(self, key: object) -> int:
        """Number of levels above the base list that contain ``key``."""
        node = self._find(key)
        if node is None:
            raise KeyNotFound(key)
        return len(node.forward) - 1

    # ------------------------------------------------------------------ #
    # Queries
    # ------------------------------------------------------------------ #

    def contains(self, key: object) -> bool:
        """Whether ``key`` is stored (charges search I/Os)."""
        return self._find(key) is not None

    def search(self, key: object) -> object:
        """Value stored under ``key``; raises :class:`KeyNotFound` otherwise."""
        node = self._find(key)
        if node is None:
            raise KeyNotFound(key)
        return node.value

    def search_io_cost(self, key: object) -> int:
        """Number of node visits (block reads) a search for ``key`` performs."""
        before = self.stats.reads
        self.contains(key)
        return self.stats.reads - before

    def range_query(self, low: object, high: object) -> List[Tuple[object, object]]:
        """All (key, value) pairs with ``low <= key <= high`` in key order."""
        result: List[Tuple[object, object]] = []
        if high < low:
            return result
        node = self._head
        for level in range(self._level, -1, -1):
            while node.forward[level] is not None and node.forward[level].key < low:
                node = node.forward[level]
                self.stats.reads += 1
        node = node.forward[0]
        while node is not None and node.key <= high:
            self.stats.reads += 1
            result.append((node.key, node.value))
            node = node.forward[0]
        return result

    # ------------------------------------------------------------------ #
    # Updates
    # ------------------------------------------------------------------ #

    def insert(self, key: object, value: object = None) -> None:
        """Insert a new key; raises :class:`DuplicateKey` if it already exists."""
        update = self._trace(key)
        candidate = update[0].forward[0]
        if candidate is not None and candidate.key == key:
            raise DuplicateKey(key)
        height = geometric_level(self._rng, self.promote_probability,
                                 max_level=self.max_level)
        if height > self._level:
            # Levels above the old top have the head as their predecessor;
            # the write loop below falls back to the head for those levels.
            self._level = height
        node = _Node(key, value, height + 1)
        for level in range(height + 1):
            predecessor = update[level] if level < len(update) else self._head
            node.forward[level] = predecessor.forward[level]
            predecessor.forward[level] = node
            self.stats.writes += 1
        self._count += 1
        self.stats.operations += 1

    def upsert(self, key: object, value: object = None) -> bool:
        """Insert or overwrite ``key``; returns ``True`` if it already existed."""
        node = self._find(key)
        if node is not None:
            node.value = value
            self.stats.writes += 1
            return True
        self.insert(key, value)
        return False

    def delete(self, key: object) -> object:
        """Remove ``key`` and return its value; raises :class:`KeyNotFound` otherwise."""
        update = self._trace(key)
        node = update[0].forward[0]
        if node is None or node.key != key:
            raise KeyNotFound(key)
        for level in range(len(node.forward)):
            predecessor = update[level] if level < len(update) else self._head
            if predecessor.forward[level] is node:
                predecessor.forward[level] = node.forward[level]
                self.stats.writes += 1
        while self._level > 0 and self._head.forward[self._level] is None:
            self._level -= 1
        self._count -= 1
        self.stats.operations += 1
        return node.value

    # ------------------------------------------------------------------ #
    # Internals
    # ------------------------------------------------------------------ #

    def _find(self, key: object) -> Optional[_Node]:
        node = self._head
        for level in range(self._level, -1, -1):
            while node.forward[level] is not None and node.forward[level].key < key:
                node = node.forward[level]
                self.stats.reads += 1
            self.stats.reads += 1  # examine the element that stops the scan
        node = node.forward[0]
        if node is not None and node.key == key:
            return node
        return None

    def _trace(self, key: object) -> List[_Node]:
        """Predecessor of ``key`` at every level, bottom-up (levels 0..)."""
        update: List[_Node] = [self._head] * (self._level + 1)
        node = self._head
        for level in range(self._level, -1, -1):
            while node.forward[level] is not None and node.forward[level].key < key:
                node = node.forward[level]
                self.stats.reads += 1
            update[level] = node
        return update

    # ------------------------------------------------------------------ #
    # Validation
    # ------------------------------------------------------------------ #

    def check(self) -> None:
        """Verify ordering and level nesting; raises :class:`InvariantViolation`."""
        keys = list(self)
        if len(keys) != self._count:
            raise InvariantViolation("walk found %d keys, expected %d"
                                     % (len(keys), self._count))
        for previous, current in zip(keys, keys[1:]):
            if not previous < current:
                raise InvariantViolation("keys out of order: %r !< %r"
                                         % (previous, current))
        for level in range(1, self._level + 1):
            node = self._head.forward[level]
            while node is not None:
                if len(node.forward) <= level:
                    raise InvariantViolation("node %r appears above its height"
                                             % (node.key,))
                node = node.forward[level]
