"""Upper-level membership lists shared by the external skip lists.

An external skip list is a hierarchy of lists ``S_0 ⊇ S_1 ⊇ … ⊇ S_h``; at
level ``i ≥ 1`` the elements are partitioned into arrays delimited by
elements promoted to level ``i + 1`` or above.  Both external variants in
this package (the folklore B-skip list and the history-independent skip
list) need the same navigation machinery over those upper levels: given a
target key, walk down from the top level, and at each level scan rightward
from the current anchor until the target is passed.

:class:`SkipListLevels` stores each ``S_i`` as a sorted list and *computes*
the scan lengths with binary search instead of physically walking the
arrays; the scan lengths are what the callers convert into block I/Os.  The
physical leaf level (where gaps, capacities, and node packing matter) is kept
by the callers themselves.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass
from typing import Dict, List


class _FrontSentinel:
    """The unique front-of-list marker, stable across pickling.

    ``FRONT`` is compared by identity (``is``) and used as a dictionary key
    throughout the skip lists, so a plain ``object()`` would break whenever a
    structure crosses a process boundary: unpickling would mint a fresh
    object and orphan every stored reference.  ``__new__`` makes the class a
    singleton and pickle re-calls the class, so identity survives.
    """

    __slots__ = ()
    _instance = None

    def __new__(cls) -> "_FrontSentinel":
        if cls._instance is None:
            cls._instance = super().__new__(cls)
        return cls._instance

    def __reduce__(self):
        return (_FrontSentinel, ())

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "FRONT"


#: Sentinel marking the front of every list (smaller than every key).
FRONT = _FrontSentinel()


@dataclass
class DescentStep:
    """One level of a search descent.

    Attributes
    ----------
    level:
        The skip-list level (1 is the lowest non-leaf level).
    scanned:
        Number of element slots read while scanning rightward at this level
        (including the element that proves the scan can stop).
    anchor:
        The largest level-``level`` element ``<=`` the target key, or
        :data:`FRONT` if there is none.
    """

    level: int
    scanned: int
    anchor: object


class SkipListLevels:
    """Sorted membership lists ``S_1 .. S_h`` with binary-search navigation."""

    def __init__(self) -> None:
        self._levels: List[List[object]] = []
        self._level_of: Dict[object, int] = {}

    # ------------------------------------------------------------------ #
    # Membership
    # ------------------------------------------------------------------ #

    def __contains__(self, key: object) -> bool:
        return key in self._level_of

    def __len__(self) -> int:
        """Number of keys tracked (i.e. keys with level >= 1)."""
        return len(self._level_of)

    @property
    def height(self) -> int:
        """Highest non-empty level (0 when no key has been promoted)."""
        return len(self._levels)

    def level_of(self, key: object) -> int:
        """The key's level (0 if it was never promoted)."""
        return self._level_of.get(key, 0)

    def members(self, level: int) -> List[object]:
        """The sorted contents of ``S_level`` (level >= 1)."""
        if level < 1 or level > len(self._levels):
            return []
        return list(self._levels[level - 1])

    def add(self, key: object, level: int) -> None:
        """Record that ``key`` has the given level (adds it to ``S_1..S_level``)."""
        if level <= 0:
            return
        if key in self._level_of:
            raise ValueError("key %r is already tracked" % (key,))
        while len(self._levels) < level:
            self._levels.append([])
        for index in range(level):
            bisect.insort(self._levels[index], key)
        self._level_of[key] = level

    def remove(self, key: object) -> int:
        """Remove ``key`` from every level; return the level it had."""
        level = self._level_of.pop(key, 0)
        for index in range(level):
            members = self._levels[index]
            position = bisect.bisect_left(members, key)
            if position < len(members) and members[position] == key:
                members.pop(position)
        while self._levels and not self._levels[-1]:
            self._levels.pop()
        return level

    # ------------------------------------------------------------------ #
    # Navigation
    # ------------------------------------------------------------------ #

    def predecessor(self, level: int, key: object) -> object:
        """Largest element of ``S_level`` that is ``<= key`` (or :data:`FRONT`)."""
        if level < 1 or level > len(self._levels):
            return FRONT
        members = self._levels[level - 1]
        position = bisect.bisect_right(members, key)
        if position == 0:
            return FRONT
        return members[position - 1]

    def descend(self, key: object) -> List[DescentStep]:
        """Simulate the top-down search for ``key`` through the non-leaf levels.

        At each level the search scans rightward from the previous level's
        anchor; the scan length is the number of level members in the open
        interval ``(previous anchor, key]`` plus one slot for the element
        that terminates the scan.
        """
        steps: List[DescentStep] = []
        anchor: object = FRONT
        for level in range(len(self._levels), 0, -1):
            members = self._levels[level - 1]
            low = 0 if anchor is FRONT else bisect.bisect_right(members, anchor)
            high = bisect.bisect_right(members, key)
            scanned = max(1, high - low + 1)
            new_anchor = members[high - 1] if high > low else anchor
            steps.append(DescentStep(level=level, scanned=scanned,
                                     anchor=new_anchor))
            anchor = new_anchor
        return steps

    def array_span(self, level: int, start: object) -> int:
        """Number of ``S_level`` elements in the array starting at ``start``.

        The array at level ``level`` starting at ``start`` extends up to (and
        not including) the next element promoted to level ``level + 1``.
        ``start`` may be :data:`FRONT`.
        """
        if level < 1 or level > len(self._levels):
            return 0
        members = self._levels[level - 1]
        begin = 0 if start is FRONT else bisect.bisect_left(members, start)
        uppers = self.members(level + 1)
        if start is FRONT:
            next_upper_position = 0
        else:
            next_upper_position = bisect.bisect_right(uppers, start)
        if next_upper_position < len(uppers):
            end = bisect.bisect_left(members, uppers[next_upper_position])
        else:
            end = len(members)
        return max(0, end - begin)

    def check(self) -> None:
        """Verify that the levels are nested, sorted, and match the level map."""
        for index, members in enumerate(self._levels):
            if members != sorted(members):
                raise ValueError("level %d is not sorted" % (index + 1,))
            if index > 0:
                upper = set(self._levels[index])
                lower = set(self._levels[index - 1])
                if not upper.issubset(lower):
                    raise ValueError("S_%d is not a subset of S_%d"
                                     % (index + 1, index))
            for key in members:
                if self._level_of.get(key, 0) < index + 1:
                    raise ValueError(
                        "key %r appears in S_%d but its recorded level is %d"
                        % (key, index + 1, self._level_of.get(key, 0)))
        for key, level in self._level_of.items():
            for index in range(level):
                members = self._levels[index]
                position = bisect.bisect_left(members, key)
                if position >= len(members) or members[position] != key:
                    raise ValueError("key %r (level %d) is missing from S_%d"
                                     % (key, level, index + 1))
