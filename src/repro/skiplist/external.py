"""The history-independent external-memory skip list (Section 6, Theorem 3).

The structure keeps the folklore B-skip list's shape but changes two things
so that its bounds hold *with high probability* and its representation is
weakly history independent:

* the promotion probability is ``1/B^γ`` with ``γ = (1 + ε)/2`` instead of
  ``1/B``, which caps every array at ``O(B^γ log N)`` elements whp, so a
  search never scans more than ``O(log_B N)`` blocks;
* at the leaf level, the arrays (runs delimited by once-promoted elements)
  are packed into *leaf nodes* delimited by twice-promoted elements, and each
  leaf array keeps history-independently sized gaps (Invariant 16), so range
  queries still read ``Θ(B)`` useful keys per block and inserts only rewrite
  a whole node when a WHI resize triggers.

Costs (Theorem 3): searches ``O(log_B N)`` I/Os whp; inserts and deletes
``O(log_B N)`` amortized I/Os whp with an ``O(B^ε log N)`` worst case; range
queries returning ``k`` keys ``O(logB N / ε + k/B)`` I/Os whp; ``O(N)``
space.

History independence follows because every piece of the representation is a
function of the key set and fresh randomness only: per-key levels are
independent coin flips, keys within arrays are sorted, array capacities
follow Invariant 16, and arrays/nodes are delimited purely by the (random)
levels.
"""

from __future__ import annotations

import math
from typing import Dict, Iterator, List, Optional, Tuple

from repro._rng import RandomLike, geometric_level, make_rng, spawn_rng
from repro.api.protocol import HIDictionary
from repro.core.sizing import WHICapacityRule
from repro.errors import (ConfigurationError, DuplicateKey, InvariantViolation,
                          KeyNotFound)
from repro.memory.stats import IOStats
from repro.skiplist.leaf import LeafArray, LeafNode
from repro.skiplist.levels import FRONT, SkipListLevels


class HistoryIndependentSkipList(HIDictionary):
    """Weakly history-independent external-memory skip list.

    Parameters
    ----------
    block_size:
        The DAM block size ``B`` (in keys per block).
    epsilon:
        The trade-off parameter ``ε > 0`` of Theorem 3; the promotion
        probability is ``1/B^γ`` with ``γ = (1 + ε)/2``.  Smaller ``ε`` means
        cheaper worst-case inserts but more expensive medium-size range
        queries.  The theory requires ``γ ≤ 1 − log log B / log B``; values
        above that are accepted (the ablation bench sweeps them) but the
        search bound degrades.
    seed:
        Seed or ``random.Random`` driving promotions and capacity draws.
    """

    def __init__(self, block_size: int = 64, epsilon: float = 0.1,
                 seed: RandomLike = None, max_level: int = 16) -> None:
        if block_size < 2:
            raise ConfigurationError("block_size must be at least 2, got %r"
                                     % (block_size,))
        if not 0.0 < epsilon < 1.0:
            raise ConfigurationError("epsilon must be in (0, 1), got %r"
                                     % (epsilon,))
        self.block_size = block_size
        self.epsilon = epsilon
        self.gamma = (1.0 + epsilon) / 2.0
        self.promote_probability = 1.0 / (block_size ** self.gamma)
        self.leaf_floor = max(2, math.ceil(block_size ** self.gamma))
        self.max_level = max_level
        self._rng = make_rng(seed)
        self._leaf_rule = WHICapacityRule(seed=spawn_rng(self._rng),
                                          floor=self.leaf_floor)
        self._levels = SkipListLevels()
        self._values: Dict[object, object] = {}
        self._nodes: Dict[object, LeafNode] = {
            FRONT: LeafNode(FRONT, [LeafArray(FRONT, [], self._leaf_rule)])
        }
        self.stats = IOStats()
        self.last_operation_ios = 0

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #

    def __len__(self) -> int:
        return len(self._values)

    def __contains__(self, key: object) -> bool:
        return self.contains(key)

    def __iter__(self) -> Iterator[object]:
        """Iterate over keys in increasing order (not I/O-charged)."""
        for node in self._nodes_in_order():
            yield from node

    @property
    def height(self) -> int:
        """Highest non-empty promotion level."""
        return self._levels.height

    def level_of(self, key: object) -> int:
        """Promotion level of ``key`` (0 if never promoted)."""
        return self._levels.level_of(key)

    def items(self) -> List[Tuple[object, object]]:
        """All (key, value) pairs in key order (not I/O-charged)."""
        return [(key, self._values[key]) for key in self]

    def leaf_node_sizes(self) -> List[int]:
        """Physical slot counts of every leaf node, in key order."""
        return [node.total_slots() for node in self._nodes_in_order()]

    def leaf_array_sizes(self) -> List[int]:
        """Key counts of every leaf array, in key order."""
        sizes: List[int] = []
        for node in self._nodes_in_order():
            sizes.extend(len(array) for array in node.arrays)
        return sizes

    def total_slots(self) -> int:
        """Total physical leaf slots (keys plus gaps): the space bound of Lemma 22."""
        return sum(node.total_slots() for node in self._nodes_in_order())

    def memory_representation(self) -> Tuple[object, ...]:
        """The physical layout inspected by history-independence audits."""
        nodes = tuple(node.slots() for node in self._nodes_in_order())
        levels = tuple(tuple(self._levels.members(level))
                       for level in range(1, self._levels.height + 1))
        return (("leaf_nodes", nodes), ("levels", levels))

    def snapshot_slots(self) -> List[Optional[object]]:
        """The concatenated leaf-node slot arrays, gaps included.

        This is the on-disk layout Invariant 16 talks about, so persisting it
        verbatim keeps the snapshot history independent.
        """
        return [slot
                for node in self._nodes_in_order()
                for slot in node.slots()]

    # ------------------------------------------------------------------ #
    # Queries
    # ------------------------------------------------------------------ #

    def contains(self, key: object) -> bool:
        """Whether ``key`` is stored (charges search I/Os)."""
        self.stats.reads += self.search_io_cost(key)
        return key in self._values

    def search(self, key: object) -> object:
        """Value stored under ``key``; raises :class:`KeyNotFound` otherwise."""
        if not self.contains(key):
            raise KeyNotFound(key)
        return self._values[key]

    def search_io_cost(self, key: object) -> int:
        """I/Os of a search for ``key`` (upper-level scans plus one leaf array)."""
        ios = 0
        for step in self._levels.descend(key):
            ios += self._blocks(step.scanned)
        node, array = self._locate(key)
        ios += self._blocks(array.capacity)
        del node
        return max(1, ios)

    def range_query(self, low: object, high: object
                    ) -> Tuple[List[Tuple[object, object]], int]:
        """All pairs with ``low <= key <= high`` plus the I/O cost charged.

        The cost is the search for ``low`` plus one block per ``B`` physical
        slots scanned plus one extra I/O per leaf-node boundary crossed
        (Lemma 21).
        """
        if high < low:
            return [], 0
        ios = self.search_io_cost(low)
        result: List[Tuple[object, object]] = []
        slots_scanned = 0
        boundaries_crossed = 0
        started = False
        done = False
        for node in self._nodes_in_order():
            if started:
                boundaries_crossed += 1
            for array in node.arrays:
                if not array.keys:
                    continue
                if array.keys[-1] < low:
                    continue
                if array.keys[0] > high:
                    done = True
                    break
                started = True
                slots_scanned += array.capacity
                for key in array.keys:
                    if low <= key <= high:
                        result.append((key, self._values[key]))
            if done:
                break
        scan_ios = self._blocks(slots_scanned) + boundaries_crossed if result else 0
        self.stats.reads += ios + scan_ios
        return result, ios + scan_ios

    # ------------------------------------------------------------------ #
    # Updates
    # ------------------------------------------------------------------ #

    def insert(self, key: object, value: object = None) -> int:
        """Insert a new key; returns the I/O cost charged for the operation."""
        if key in self._values:
            raise DuplicateKey(key)
        read_ios = self.search_io_cost(key)
        self.stats.reads += read_ios
        node, array = self._locate(key)
        level = geometric_level(self._rng, self.promote_probability,
                                max_level=self.max_level)
        if level == 0:
            resized = array.insert(key, self._leaf_rule)
            if resized:
                node.rebuild(self._leaf_rule)
                self.stats.bump("skiplist.node_rebuild")
                write_ios = self._blocks(node.total_slots())
            else:
                write_ios = self._blocks(array.capacity)
        else:
            write_ios = self._insert_promoted(node, array, key, level)
        self._values[key] = value
        self.stats.writes += write_ios
        self.stats.operations += 1
        self.last_operation_ios = read_ios + write_ios
        return self.last_operation_ios

    def upsert(self, key: object, value: object = None) -> bool:
        """Insert or overwrite ``key``; returns ``True`` if it already existed.

        Overwriting only touches the value table (values live alongside their
        keys on the leaf level, so the rewrite costs the search plus one leaf
        array write); the key layout — the history-independent part — is
        untouched.
        """
        if key in self._values:
            read_ios = self.search_io_cost(key)
            _node, array = self._locate(key)
            write_ios = self._blocks(array.capacity)
            self._values[key] = value
            self.stats.reads += read_ios
            self.stats.writes += write_ios
            self.stats.operations += 1
            self.last_operation_ios = read_ios + write_ios
            return True
        self.insert(key, value)
        return False

    def delete(self, key: object) -> object:
        """Remove ``key`` and return its value; raises :class:`KeyNotFound` otherwise."""
        if key not in self._values:
            raise KeyNotFound(key)
        read_ios = self.search_io_cost(key)
        self.stats.reads += read_ios
        level = self._levels.level_of(key)
        if level >= 2:
            write_ios = self._delete_node_boundary(key)
        elif level == 1:
            write_ios = self._delete_array_boundary(key)
        else:
            node, array = self._locate(key)
            resized = array.remove(key, self._leaf_rule)
            if resized:
                node.rebuild(self._leaf_rule)
                self.stats.bump("skiplist.node_rebuild")
                write_ios = self._blocks(node.total_slots())
            else:
                write_ios = self._blocks(array.capacity)
        value = self._values.pop(key)
        self.stats.writes += write_ios
        self.stats.operations += 1
        self.last_operation_ios = read_ios + write_ios
        return value

    # ------------------------------------------------------------------ #
    # Promoted inserts and deletes
    # ------------------------------------------------------------------ #

    def _insert_promoted(self, node: LeafNode, array: LeafArray,
                         key: object, level: int) -> int:
        """Insert a promoted key: split its leaf array (and node if level >= 2)."""
        smaller = [existing for existing in array.keys if existing < key]
        larger = [existing for existing in array.keys if existing > key]
        left = LeafArray(array.start, smaller, self._leaf_rule)
        right = LeafArray(key, [key] + larger, self._leaf_rule)
        index = node.arrays.index(array)
        node.arrays[index:index + 1] = [left, right]
        self._levels.add(key, level)
        write_ios = self._blocks(node.total_slots())
        if level >= 2:
            # The new key starts a fresh leaf node.
            moved = node.arrays[index + 1:]
            node.arrays = node.arrays[:index + 1]
            new_node = LeafNode(key, moved)
            self._nodes[key] = new_node
            self.stats.bump("skiplist.node_split")
            write_ios = self._blocks(node.total_slots()) + self._blocks(new_node.total_slots())
        else:
            self.stats.bump("skiplist.array_split")
        return write_ios

    def _delete_array_boundary(self, key: object) -> int:
        """Delete a once-promoted key: merge its array into its predecessor."""
        node, _array = self._locate(key)
        self._levels.remove(key)
        index = None
        for position, candidate in enumerate(node.arrays):
            if candidate.start is not FRONT and candidate.start == key:
                index = position
                break
        if index is None or index == 0:
            raise InvariantViolation("array boundary %r not found in its node" % (key,))
        previous = node.arrays[index - 1]
        current = node.arrays[index]
        merged_keys = previous.keys + [existing for existing in current.keys
                                       if existing != key]
        merged = LeafArray(previous.start, merged_keys, self._leaf_rule)
        node.arrays[index - 1:index + 1] = [merged]
        self.stats.bump("skiplist.array_merge")
        return self._blocks(node.total_slots())

    def _delete_node_boundary(self, key: object) -> int:
        """Delete a twice-promoted key: merge its node into its predecessor node."""
        node = self._nodes.pop(key)
        self._levels.remove(key)
        predecessor_start = self._levels.predecessor(2, key)
        predecessor = self._nodes[predecessor_start]
        boundary_array = node.arrays[0]
        trailing_arrays = node.arrays[1:]
        previous_array = predecessor.arrays[-1]
        merged_keys = previous_array.keys + [existing for existing in boundary_array.keys
                                             if existing != key]
        merged = LeafArray(previous_array.start, merged_keys, self._leaf_rule)
        predecessor.arrays[-1] = merged
        predecessor.arrays.extend(trailing_arrays)
        self.stats.bump("skiplist.node_merge")
        return self._blocks(predecessor.total_slots())

    # ------------------------------------------------------------------ #
    # Internals
    # ------------------------------------------------------------------ #

    def _blocks(self, slots: int) -> int:
        return max(1, math.ceil(slots / self.block_size))

    def _locate(self, key: object) -> Tuple[LeafNode, LeafArray]:
        """The leaf node and leaf array whose key range contains ``key``."""
        node_start = self._levels.predecessor(2, key)
        node = self._nodes.get(node_start)
        if node is None:
            raise InvariantViolation("no leaf node for boundary %r" % (node_start,))
        return node, node.array_for(key)

    def _nodes_in_order(self) -> Iterator[LeafNode]:
        yield self._nodes[FRONT]
        for boundary in self._levels.members(2):
            node = self._nodes.get(boundary)
            if node is not None:
                yield node

    # ------------------------------------------------------------------ #
    # Validation
    # ------------------------------------------------------------------ #

    def check(self) -> None:
        """Verify every structural invariant; raises :class:`InvariantViolation`."""
        try:
            self._levels.check()
        except ValueError as error:
            raise InvariantViolation(str(error)) from error
        keys: List[object] = []
        for node in self._nodes_in_order():
            node.check(self.leaf_floor)
            keys.extend(node)
        if len(keys) != len(self._values):
            raise InvariantViolation("leaf level stores %d keys, expected %d"
                                     % (len(keys), len(self._values)))
        if keys != sorted(keys):
            raise InvariantViolation("leaf keys are not globally sorted")
        node_boundaries = set(self._levels.members(2))
        stored_boundaries = set(self._nodes) - {FRONT}
        if node_boundaries != stored_boundaries:
            raise InvariantViolation("leaf node boundaries do not match S_2")
        array_boundaries = set(self._levels.members(1))
        seen_boundaries = set()
        for node in self._nodes_in_order():
            for array in node.arrays:
                if array.start is not FRONT:
                    seen_boundaries.add(array.start)
        if array_boundaries != seen_boundaries:
            raise InvariantViolation("leaf array boundaries do not match S_1")
