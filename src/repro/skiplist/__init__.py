"""Skip lists: in-memory, folklore external-memory, and history-independent.

Three related structures from Section 6 of the paper:

* :class:`~repro.skiplist.memory.MemorySkipList` — Pugh's classic skip list
  (promotion probability 1/2).  Running it directly on disk costs
  ``Θ(log N)`` I/Os per search, which is the baseline the external variants
  are measured against.
* :class:`~repro.skiplist.folklore.FolkloreBSkipList` — the folklore external
  skip list that promotes with probability ``1/B``.  Its *expected* search
  cost is ``O(log_B N)`` I/Os, but Lemma 15 shows that with high probability
  ``Ω(√(NB))`` of its elements cost ``Ω(log(N/B))`` I/Os to search.
* :class:`~repro.skiplist.external.HistoryIndependentSkipList` — the paper's
  history-independent external-memory skip list (Theorem 3): promotion
  probability ``1/B^γ`` with ``γ = (1+ε)/2``, leaf arrays packed into leaf
  nodes delimited by twice-promoted elements, and WHI leaf-array sizing
  (Invariant 16).  Searches and updates cost ``O(log_B N)`` I/Os with high
  probability and range queries cost ``O(logB N / ε + k/B)`` I/Os.
"""

from repro.skiplist.memory import MemorySkipList
from repro.skiplist.folklore import FolkloreBSkipList
from repro.skiplist.external import HistoryIndependentSkipList
from repro.skiplist.leaf import LeafArray, LeafNode

__all__ = [
    "MemorySkipList",
    "FolkloreBSkipList",
    "HistoryIndependentSkipList",
    "LeafArray",
    "LeafNode",
]
