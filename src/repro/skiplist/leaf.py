"""Leaf arrays and leaf nodes of the history-independent external skip list.

At the leaf level the history-independent skip list stores every key.  Keys
between two consecutive once-promoted elements form a *leaf array*; the leaf
arrays between two consecutive twice-promoted elements are packed together
into a *leaf node*, which is what actually occupies consecutive disk blocks
(Figure 3 of the paper).

Leaf arrays keep gaps so that inserts do not always rewrite the whole node.
Their capacities follow Invariant 16: with ``n`` elements and floor
``⌈B^γ⌉``, the capacity is uniform on ``[B^γ, 2B^γ - 1]`` when ``n ≤ B^γ``
and uniform on ``[n, 2n - 1]`` otherwise — exactly the floored WHI capacity
rule of :mod:`repro.core.sizing`.
"""

from __future__ import annotations

import bisect
from typing import Iterator, List, Optional, Tuple

from repro.core.sizing import WHICapacityRule
from repro.errors import InvariantViolation
from repro.skiplist.levels import FRONT


class LeafArray:
    """One leaf array: a sorted run of keys plus WHI-sized slack capacity."""

    __slots__ = ("start", "keys", "capacity")

    def __init__(self, start: object, keys: List[object], rule: WHICapacityRule) -> None:
        self.start = start
        self.keys = list(keys)
        self.capacity = rule.initial_capacity(len(self.keys))

    def __len__(self) -> int:
        return len(self.keys)

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        head = "FRONT" if self.start is FRONT else repr(self.start)
        return "LeafArray(start=%s, n=%d, capacity=%d)" % (head, len(self.keys),
                                                           self.capacity)

    def slots(self) -> Tuple[Optional[object], ...]:
        """The array's physical slots: keys first, then gaps up to capacity."""
        return tuple(self.keys) + (None,) * max(0, self.capacity - len(self.keys))

    def insert(self, key: object, rule: WHICapacityRule) -> bool:
        """Insert ``key`` (keeping sorted order); return ``True`` if a resize occurred."""
        bisect.insort(self.keys, key)
        self.capacity, resized = rule.after_insert(len(self.keys), self.capacity)
        return resized

    def remove(self, key: object, rule: WHICapacityRule) -> bool:
        """Remove ``key``; return ``True`` if a resize occurred."""
        position = bisect.bisect_left(self.keys, key)
        if position >= len(self.keys) or self.keys[position] != key:
            raise InvariantViolation("key %r missing from its leaf array" % (key,))
        self.keys.pop(position)
        self.capacity, resized = rule.after_delete(len(self.keys), self.capacity)
        return resized

    def redraw_capacity(self, rule: WHICapacityRule) -> None:
        """Draw a fresh capacity from the invariant distribution (node rebuild)."""
        self.capacity = rule.initial_capacity(len(self.keys))

    def check(self, floor: int) -> None:
        """Verify sortedness and the Invariant 16 capacity bounds."""
        if self.keys != sorted(self.keys):
            raise InvariantViolation("leaf array keys are not sorted")
        low = max(len(self.keys), floor)
        if not low <= self.capacity <= 2 * low - 1:
            raise InvariantViolation(
                "leaf array capacity %d outside [%d, %d]"
                % (self.capacity, low, 2 * low - 1))


class LeafNode:
    """A run of consecutive leaf arrays stored contiguously on disk."""

    __slots__ = ("start", "arrays")

    def __init__(self, start: object, arrays: List[LeafArray]) -> None:
        self.start = start
        self.arrays = list(arrays)

    def __len__(self) -> int:
        """Number of keys stored in the node."""
        return sum(len(array) for array in self.arrays)

    def __iter__(self) -> Iterator[object]:
        for array in self.arrays:
            yield from array.keys

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        head = "FRONT" if self.start is FRONT else repr(self.start)
        return "LeafNode(start=%s, arrays=%d, keys=%d, slots=%d)" % (
            head, len(self.arrays), len(self), self.total_slots())

    def total_slots(self) -> int:
        """Total physical slots (keys plus gaps) occupied by the node."""
        return sum(array.capacity for array in self.arrays)

    def slots(self) -> Tuple[Optional[object], ...]:
        """The node's physical slots, concatenating its arrays in order."""
        flattened: Tuple[Optional[object], ...] = ()
        for array in self.arrays:
            flattened += array.slots()
        return flattened

    def array_for(self, key: object) -> LeafArray:
        """The leaf array whose key range contains ``key``."""
        if not self.arrays:
            raise InvariantViolation("leaf node has no arrays")
        chosen = self.arrays[0]
        for array in self.arrays[1:]:
            if array.start is not FRONT and array.start <= key:
                chosen = array
            else:
                break
        return chosen

    def array_index_for(self, key: object) -> int:
        """Index of the leaf array whose key range contains ``key``."""
        index = 0
        for position, array in enumerate(self.arrays[1:], start=1):
            if array.start is not FRONT and array.start <= key:
                index = position
            else:
                break
        return index

    def rebuild(self, rule: WHICapacityRule) -> None:
        """Redraw the capacity of every array (a whole-node rewrite)."""
        for array in self.arrays:
            array.redraw_capacity(rule)

    def check(self, floor: int) -> None:
        """Verify ordering across arrays and each array's own invariants."""
        previous_last: Optional[object] = None
        for array in self.arrays:
            array.check(floor)
            if not array.keys:
                continue
            if previous_last is not None and not previous_last < array.keys[0]:
                raise InvariantViolation("leaf arrays overlap or are out of order")
            previous_last = array.keys[-1]
