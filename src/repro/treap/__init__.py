"""Treaps: uniquely represented randomized search trees.

The treap of Aragon and Seidel is one of the earliest *uniquely represented*
dictionaries and the basis of Golovin's B-treap, the strongly
history-independent external-memory dictionary that the paper's related-work
section positions as the main prior alternative to its own constructions.

This package provides:

* :class:`~repro.treap.treap.Treap` — an in-memory key/value treap whose
  priorities are a salted hash of the key, so the tree shape (and hence the
  memory representation) is a canonical function of the stored key set and
  the initial salt.  By the characterisation of Hartline et al. this makes it
  strongly history independent.
* :class:`~repro.treap.treap.TreapNode` — the node type, exposed for tests
  and for the block packing used by :mod:`repro.btreap`.
"""

from repro.treap.treap import Treap, TreapNode

__all__ = ["Treap", "TreapNode"]
