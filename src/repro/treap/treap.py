"""An in-memory treap with key-derived priorities (Aragon and Seidel).

A treap stores key/value pairs in a binary search tree ordered by key whose
nodes additionally satisfy the max-heap property on *priorities*.  When the
priority of a key is a fixed random function of the key itself, the shape of
the tree is a deterministic function of the *set* of stored keys — it does
not depend on the order in which keys were inserted or deleted.  The treap is
therefore *uniquely represented* given its initial randomness, which by the
characterisation of Hartline et al. makes it strongly history independent.

This implementation derives priorities from a salted BLAKE2 hash of the key's
``repr``.  The salt is drawn once at construction (from the structure's seed)
and never changes, so:

* two treaps with the same salt and the same key set have *identical* shapes
  (unique representation), and
* across salts, the shape distribution of a fixed key set is the same no
  matter which operation sequence produced it (history independence).

The treap is the in-memory baseline for the strongly history-independent
external dictionaries discussed in the paper's related work (Golovin's
B-treap, built in :mod:`repro.btreap`, packs this exact shape into blocks).

Costs: the depth of every node is ``O(log N)`` in expectation over the salt,
so searches, inserts, and deletes take expected ``O(log N)`` comparisons.
Unlike the paper's weakly history-independent structures, no useful *with
high probability* amortized bound is possible here (Observation 1 territory:
strong history independence and high-probability amortized guarantees do not
mix), which the benches demonstrate empirically.
"""

from __future__ import annotations

import hashlib
from typing import Callable, Iterator, List, Optional, Tuple

from repro._rng import RandomLike, make_rng
from repro.api.protocol import HIDictionary
from repro.errors import DuplicateKey, InvariantViolation, KeyNotFound
from repro.memory.stats import IOStats

PriorityFunction = Callable[[object], int]


class TreapNode:
    """One treap node: a key/value pair, its priority, and two children."""

    __slots__ = ("key", "value", "priority", "left", "right")

    def __init__(self, key: object, value: object, priority: int) -> None:
        self.key = key
        self.value = value
        self.priority = priority
        self.left: Optional["TreapNode"] = None
        self.right: Optional["TreapNode"] = None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "TreapNode(key=%r, priority=%d)" % (self.key, self.priority)


def salted_priority(salt: bytes, key: object) -> int:
    """Priority of ``key`` under ``salt``: a 64-bit salted hash of ``repr(key)``.

    The hash is keyed (BLAKE2b with the salt as key), so an adversary who does
    not know the salt cannot craft keys with chosen priorities; with the salt
    fixed the priority is a pure function of the key, which is what unique
    representation requires.
    """
    digest = hashlib.blake2b(repr(key).encode("utf-8"), key=salt, digest_size=8)
    return int.from_bytes(digest.digest(), "big")


class SaltedPriority:
    """The default priority function: :func:`salted_priority` under one salt.

    A named class (not a closure) so treaps are picklable — the process-
    parallel shard backend ships whole structures to worker processes.
    """

    __slots__ = ("salt",)

    def __init__(self, salt: bytes) -> None:
        self.salt = salt

    def __call__(self, key: object) -> int:
        return salted_priority(self.salt, key)


class Treap(HIDictionary):
    """A strongly history-independent in-memory dictionary.

    Parameters
    ----------
    seed:
        Seed (or ``random.Random``) used to draw the priority salt.  Two
        treaps built with the same seed and holding the same keys are
        bit-for-bit identical in shape.
    priority_of:
        Optional override mapping a key to an integer priority.  Supplying a
        deterministic function keeps unique representation; supplying a
        history-dependent one (e.g. insertion counters) deliberately breaks
        it, which the history-audit tests use as a negative control.
    """

    def __init__(self, seed: RandomLike = None,
                 priority_of: Optional[PriorityFunction] = None) -> None:
        rng = make_rng(seed)
        self._salt = rng.getrandbits(128).to_bytes(16, "big")
        self._priority_of = priority_of or SaltedPriority(self._salt)
        self._root: Optional[TreapNode] = None
        self._count = 0
        self.stats = IOStats()

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #

    def __len__(self) -> int:
        return self._count

    def __contains__(self, key: object) -> bool:
        return self.contains(key)

    def __iter__(self) -> Iterator[object]:
        """Iterate over the keys in increasing order."""
        yield from (key for key, _value in self._walk(self._root))

    def items(self) -> List[Tuple[object, object]]:
        """All (key, value) pairs in key order."""
        return list(self._walk(self._root))

    def keys(self) -> List[object]:
        """All keys in increasing order."""
        return [key for key, _value in self._walk(self._root)]

    @property
    def root(self) -> Optional[TreapNode]:
        """The root node (``None`` when empty); exposed for audits and packing."""
        return self._root

    @property
    def height(self) -> int:
        """Length of the longest root-to-leaf path (0 for an empty treap)."""
        return self._height_of(self._root)

    def audit_fingerprint(self) -> object:
        """The height: with a fresh salt per trial the full representation
        essentially never repeats, so the audit compares this coarser
        shape statistic instead."""
        return self.height

    def depth_of(self, key: object) -> int:
        """1-indexed depth of ``key`` (the root has depth 1)."""
        node = self._root
        depth = 0
        while node is not None:
            depth += 1
            if key == node.key:
                return depth
            node = node.left if key < node.key else node.right
        raise KeyNotFound(key)

    def memory_representation(self) -> Tuple[object, ...]:
        """A canonical encoding of the pointer structure.

        The shape is serialised as a pre-order traversal of ``(key, value)``
        pairs with explicit ``None`` markers for absent children, which is a
        faithful stand-in for the pointer representation an observer would
        see.  Two treaps with the same salt and contents produce identical
        encodings — the unique-representation property audited by the tests.
        """
        encoded: List[object] = []

        def visit(node: Optional[TreapNode]) -> None:
            if node is None:
                encoded.append(None)
                return
            encoded.append((node.key, node.value))
            visit(node.left)
            visit(node.right)

        visit(self._root)
        return tuple(encoded)

    # ------------------------------------------------------------------ #
    # Queries
    # ------------------------------------------------------------------ #

    def contains(self, key: object) -> bool:
        """Whether ``key`` is stored."""
        return self._find(key) is not None

    def search(self, key: object) -> object:
        """Value stored under ``key``; raises :class:`KeyNotFound` otherwise."""
        node = self._find(key)
        if node is None:
            raise KeyNotFound(key)
        return node.value

    def search_comparisons(self, key: object) -> int:
        """Number of nodes visited when searching for ``key`` (found or not)."""
        node = self._root
        visited = 0
        while node is not None:
            visited += 1
            if key == node.key:
                break
            node = node.left if key < node.key else node.right
        return visited

    def minimum(self) -> Tuple[object, object]:
        """The smallest (key, value) pair; raises :class:`KeyNotFound` when empty."""
        if self._root is None:
            raise KeyNotFound("treap is empty")
        node = self._root
        while node.left is not None:
            node = node.left
        return node.key, node.value

    def maximum(self) -> Tuple[object, object]:
        """The largest (key, value) pair; raises :class:`KeyNotFound` when empty."""
        if self._root is None:
            raise KeyNotFound("treap is empty")
        node = self._root
        while node.right is not None:
            node = node.right
        return node.key, node.value

    def successor(self, key: object) -> Optional[Tuple[object, object]]:
        """The smallest stored pair with key strictly greater than ``key``."""
        node = self._root
        best: Optional[TreapNode] = None
        while node is not None:
            if node.key > key:
                best = node
                node = node.left
            else:
                node = node.right
        return None if best is None else (best.key, best.value)

    def predecessor(self, key: object) -> Optional[Tuple[object, object]]:
        """The largest stored pair with key strictly smaller than ``key``."""
        node = self._root
        best: Optional[TreapNode] = None
        while node is not None:
            if node.key < key:
                best = node
                node = node.right
            else:
                node = node.left
        return None if best is None else (best.key, best.value)

    def range_query(self, low: object, high: object) -> List[Tuple[object, object]]:
        """All (key, value) pairs with ``low <= key <= high`` in key order."""
        result: List[Tuple[object, object]] = []
        if self._root is None or high < low:
            return result
        self._range_collect(self._root, low, high, result)
        return result

    def _range_collect(self, node: Optional[TreapNode], low: object, high: object,
                       out: List[Tuple[object, object]]) -> None:
        if node is None:
            return
        if node.key > low:
            self._range_collect(node.left, low, high, out)
        if low <= node.key <= high:
            out.append((node.key, node.value))
        if node.key < high:
            self._range_collect(node.right, low, high, out)

    # ------------------------------------------------------------------ #
    # Updates
    # ------------------------------------------------------------------ #

    def insert(self, key: object, value: object = None) -> None:
        """Insert a new key; raises :class:`DuplicateKey` if it already exists."""
        if self.contains(key):
            raise DuplicateKey(key)
        priority = self._priority_of(key)
        self._root = self._insert_node(self._root, TreapNode(key, value, priority))
        self._count += 1
        self.stats.operations += 1

    def upsert(self, key: object, value: object = None) -> bool:
        """Insert or overwrite ``key``; returns ``True`` if it already existed."""
        node = self._find(key)
        if node is not None:
            node.value = value
            return True
        self.insert(key, value)
        return False

    def delete(self, key: object) -> object:
        """Remove ``key`` and return its value; raises :class:`KeyNotFound` otherwise."""
        node = self._find(key)
        if node is None:
            raise KeyNotFound(key)
        value = node.value
        self._root = self._delete_node(self._root, key)
        self._count -= 1
        self.stats.operations += 1
        return value

    def bulk_load(self, items: List[Tuple[object, object]]) -> None:
        """Insert every (key, value) pair of ``items`` (keys must be new)."""
        for key, value in items:
            self.insert(key, value)

    # ------------------------------------------------------------------ #
    # Rotation-based internals
    # ------------------------------------------------------------------ #

    def _insert_node(self, node: Optional[TreapNode],
                     fresh: TreapNode) -> TreapNode:
        if node is None:
            return fresh
        if fresh.key < node.key:
            node.left = self._insert_node(node.left, fresh)
            if node.left.priority > node.priority:
                node = self._rotate_right(node)
        else:
            node.right = self._insert_node(node.right, fresh)
            if node.right.priority > node.priority:
                node = self._rotate_left(node)
        return node

    def _delete_node(self, node: Optional[TreapNode],
                     key: object) -> Optional[TreapNode]:
        if node is None:
            raise KeyNotFound(key)
        if key < node.key:
            node.left = self._delete_node(node.left, key)
            return node
        if key > node.key:
            node.right = self._delete_node(node.right, key)
            return node
        # Rotate the node down until it is a leaf, then drop it.
        if node.left is None:
            return node.right
        if node.right is None:
            return node.left
        if node.left.priority > node.right.priority:
            node = self._rotate_right(node)
            node.right = self._delete_node(node.right, key)
        else:
            node = self._rotate_left(node)
            node.left = self._delete_node(node.left, key)
        return node

    def _rotate_right(self, node: TreapNode) -> TreapNode:
        pivot = node.left
        assert pivot is not None
        node.left = pivot.right
        pivot.right = node
        self.stats.bump("treap.rotation")
        return pivot

    def _rotate_left(self, node: TreapNode) -> TreapNode:
        pivot = node.right
        assert pivot is not None
        node.right = pivot.left
        pivot.left = node
        self.stats.bump("treap.rotation")
        return pivot

    # ------------------------------------------------------------------ #
    # Helpers
    # ------------------------------------------------------------------ #

    def _find(self, key: object) -> Optional[TreapNode]:
        node = self._root
        while node is not None:
            if key == node.key:
                return node
            node = node.left if key < node.key else node.right
        return None

    def _walk(self, node: Optional[TreapNode]
              ) -> Iterator[Tuple[object, object]]:
        if node is None:
            return
        yield from self._walk(node.left)
        yield node.key, node.value
        yield from self._walk(node.right)

    def _height_of(self, node: Optional[TreapNode]) -> int:
        if node is None:
            return 0
        return 1 + max(self._height_of(node.left), self._height_of(node.right))

    # ------------------------------------------------------------------ #
    # Validation
    # ------------------------------------------------------------------ #

    def check(self) -> None:
        """Verify the BST and heap invariants; raises :class:`InvariantViolation`."""
        keys = self.keys()
        if len(keys) != self._count:
            raise InvariantViolation("walk found %d keys, expected %d"
                                     % (len(keys), self._count))
        for previous, current in zip(keys, keys[1:]):
            if not previous < current:
                raise InvariantViolation("keys out of order: %r !< %r"
                                         % (previous, current))
        self._check_heap(self._root)

    def _check_heap(self, node: Optional[TreapNode]) -> None:
        if node is None:
            return
        for child in (node.left, node.right):
            if child is not None and child.priority > node.priority:
                raise InvariantViolation(
                    "heap violation: child %r outranks parent %r"
                    % (child.key, node.key))
        self._check_heap(node.left)
        self._check_heap(node.right)
