"""The classic B-tree baseline.

The paper positions its structures as history-independent alternatives to the
B-tree, "the primary indexing data structure used in databases".  This
package provides that comparator: a textbook B-tree whose nodes each occupy
one disk block of the DAM model, with I/O counting for searches, updates and
range queries.  Its layout is grossly history dependent (node splits depend
on insertion order), which also makes it a useful control for the
history-independence audits.
"""

from repro.btree.btree import BTree

__all__ = ["BTree"]
