"""A classic B-tree on the disk-access machine.

Each node stores up to ``2t - 1`` keys and occupies one block; the minimum
degree ``t`` is chosen so that a full node fills a block of ``B`` key/value
pairs, i.e. ``t = max(2, ⌈(B + 1) / 2⌉)``.  Every node visited during an
operation is charged one read I/O and every node modified one write I/O,
which is the standard DAM accounting for B-trees and gives the familiar
bounds: ``O(log_B N)`` I/Os for searches, inserts and deletes, and
``O(log_B N + k/B)`` I/Os for a range query returning ``k`` pairs.

The implementation is the textbook (CLRS-style) single-pass algorithm:
inserts split full children on the way down; deletes merge or borrow so that
every node on the descent has at least ``t`` keys.
"""

from __future__ import annotations

from typing import Iterator, List, Optional, Tuple

from repro.api.protocol import HIDictionary
from repro.errors import ConfigurationError, DuplicateKey, InvariantViolation, KeyNotFound
from repro.memory.stats import IOStats


class _Node:
    """One B-tree node: sorted keys, parallel values, children (internal only)."""

    __slots__ = ("keys", "values", "children")

    def __init__(self) -> None:
        self.keys: List[object] = []
        self.values: List[object] = []
        self.children: List["_Node"] = []

    @property
    def is_leaf(self) -> bool:
        return not self.children


class BTree(HIDictionary):
    """A key/value B-tree with DAM-model I/O accounting."""

    def __init__(self, block_size: int = 64) -> None:
        if block_size < 3:
            raise ConfigurationError("block_size must be at least 3, got %r"
                                     % (block_size,))
        self.block_size = block_size
        self.min_degree = max(2, (block_size + 1) // 2)
        self._root = _Node()
        self._count = 0
        self.stats = IOStats()

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #

    def __len__(self) -> int:
        return self._count

    def __contains__(self, key: object) -> bool:
        return self.contains(key)

    def __iter__(self) -> Iterator[object]:
        """Iterate over the keys in increasing order (not I/O-charged)."""
        yield from (key for key, _value in self._walk(self._root))

    def items(self) -> List[Tuple[object, object]]:
        """All (key, value) pairs in key order (not I/O-charged)."""
        return list(self._walk(self._root))

    @property
    def height(self) -> int:
        """Number of levels in the tree (a lone root has height 1)."""
        height = 1
        node = self._root
        while not node.is_leaf:
            node = node.children[0]
            height += 1
        return height

    def memory_representation(self) -> Tuple[object, ...]:
        """The node layout as a pre-order traversal of per-node key tuples.

        Used by the history-independence audits as the observable
        representation of the B-tree.  It is a deterministic function of the
        *operation sequence* (not just the key set), which is exactly why the
        B-tree fails the weak-history-independence audit and serves as the
        negative control.
        """
        encoded: List[object] = []

        def visit(node: _Node) -> None:
            encoded.append(tuple(node.keys))
            for child in node.children:
                visit(child)
            encoded.append(None)  # explicit end-of-children marker

        visit(self._root)
        return tuple(encoded)

    # ------------------------------------------------------------------ #
    # Queries
    # ------------------------------------------------------------------ #

    def contains(self, key: object) -> bool:
        """Whether ``key`` is stored (charges the search I/Os)."""
        return self._search_node(self._root, key) is not None

    def search(self, key: object) -> object:
        """Value stored under ``key``; raises :class:`KeyNotFound` otherwise."""
        found = self._search_node(self._root, key)
        if found is None:
            raise KeyNotFound(key)
        node, index = found
        return node.values[index]

    def search_io_cost(self, key: object) -> int:
        """Number of read I/Os a search for ``key`` performs."""
        before = self.stats.reads
        self.contains(key)
        return self.stats.reads - before

    def range_query(self, low: object, high: object) -> List[Tuple[object, object]]:
        """All (key, value) pairs with ``low <= key <= high`` in key order."""
        result: List[Tuple[object, object]] = []
        if high < low:
            return result
        self._range_collect(self._root, low, high, result)
        return result

    def _range_collect(self, node: _Node, low: object, high: object,
                       out: List[Tuple[object, object]]) -> None:
        self._read(node)
        index = 0
        while index < len(node.keys) and node.keys[index] < low:
            index += 1
        while True:
            if not node.is_leaf:
                child = node.children[index]
                # Only descend into children that can intersect the range.
                if index == len(node.keys) or node.keys[index] >= low:
                    self._range_collect(child, low, high, out)
            if index == len(node.keys):
                break
            key = node.keys[index]
            if key > high:
                return
            if key >= low:
                out.append((key, node.values[index]))
            index += 1

    # ------------------------------------------------------------------ #
    # Insert
    # ------------------------------------------------------------------ #

    def insert(self, key: object, value: object = None) -> None:
        """Insert a new key; raises :class:`DuplicateKey` if it already exists."""
        if self.contains(key):
            raise DuplicateKey(key)
        root = self._root
        if len(root.keys) == 2 * self.min_degree - 1:
            new_root = _Node()
            new_root.children.append(root)
            self._split_child(new_root, 0)
            self._root = new_root
            root = new_root
        self._insert_nonfull(root, key, value)
        self._count += 1
        self.stats.operations += 1

    def upsert(self, key: object, value: object = None) -> bool:
        """Insert or overwrite ``key``; returns ``True`` if it already existed."""
        found = self._search_node(self._root, key)
        if found is not None:
            node, index = found
            node.values[index] = value
            self._write(node)
            return True
        self.insert(key, value)
        return False

    def _insert_nonfull(self, node: _Node, key: object, value: object) -> None:
        self._read(node)
        if node.is_leaf:
            index = self._upper_bound(node.keys, key)
            node.keys.insert(index, key)
            node.values.insert(index, value)
            self._write(node)
            return
        index = self._upper_bound(node.keys, key)
        child = node.children[index]
        self._read(child)
        if len(child.keys) == 2 * self.min_degree - 1:
            self._split_child(node, index)
            if key > node.keys[index]:
                index += 1
        self._insert_nonfull(node.children[index], key, value)

    def _split_child(self, parent: _Node, index: int) -> None:
        t = self.min_degree
        child = parent.children[index]
        sibling = _Node()
        sibling.keys = child.keys[t:]
        sibling.values = child.values[t:]
        if not child.is_leaf:
            sibling.children = child.children[t:]
            child.children = child.children[:t]
        median_key = child.keys[t - 1]
        median_value = child.values[t - 1]
        child.keys = child.keys[: t - 1]
        child.values = child.values[: t - 1]
        parent.keys.insert(index, median_key)
        parent.values.insert(index, median_value)
        parent.children.insert(index + 1, sibling)
        self._write(child)
        self._write(sibling)
        self._write(parent)
        self.stats.bump("btree.split")

    # ------------------------------------------------------------------ #
    # Delete
    # ------------------------------------------------------------------ #

    def delete(self, key: object) -> object:
        """Remove ``key`` and return its value; raises :class:`KeyNotFound` otherwise."""
        value = self.search(key)
        self._delete_from(self._root, key)
        if not self._root.keys and not self._root.is_leaf:
            self._root = self._root.children[0]
        self._count -= 1
        self.stats.operations += 1
        return value

    def _delete_from(self, node: _Node, key: object) -> None:
        t = self.min_degree
        self._read(node)
        index = self._lower_bound(node.keys, key)
        if index < len(node.keys) and node.keys[index] == key:
            if node.is_leaf:
                node.keys.pop(index)
                node.values.pop(index)
                self._write(node)
                return
            self._delete_internal(node, index, key)
            return
        if node.is_leaf:
            raise KeyNotFound(key)
        child = node.children[index]
        self._read(child)
        if len(child.keys) < t:
            self._fill_child(node, index)
            # Filling may have merged the child away; recompute the descent.
            index = self._lower_bound(node.keys, key)
            if index < len(node.keys) and node.keys[index] == key:
                self._delete_internal(node, index, key)
                return
            child = node.children[min(index, len(node.children) - 1)]
        self._delete_from(child, key)

    def _delete_internal(self, node: _Node, index: int, key: object) -> None:
        t = self.min_degree
        left = node.children[index]
        right = node.children[index + 1]
        self._read(left)
        self._read(right)
        if len(left.keys) >= t:
            pred_key, pred_value = self._max_of(left)
            node.keys[index] = pred_key
            node.values[index] = pred_value
            self._write(node)
            self._delete_from(left, pred_key)
        elif len(right.keys) >= t:
            succ_key, succ_value = self._min_of(right)
            node.keys[index] = succ_key
            node.values[index] = succ_value
            self._write(node)
            self._delete_from(right, succ_key)
        else:
            self._merge_children(node, index)
            self._delete_from(left, key)

    def _fill_child(self, node: _Node, index: int) -> None:
        t = self.min_degree
        if index > 0 and len(node.children[index - 1].keys) >= t:
            self._borrow_from_left(node, index)
        elif (index < len(node.children) - 1
              and len(node.children[index + 1].keys) >= t):
            self._borrow_from_right(node, index)
        elif index < len(node.children) - 1:
            self._merge_children(node, index)
        else:
            self._merge_children(node, index - 1)

    def _borrow_from_left(self, node: _Node, index: int) -> None:
        child = node.children[index]
        left = node.children[index - 1]
        child.keys.insert(0, node.keys[index - 1])
        child.values.insert(0, node.values[index - 1])
        node.keys[index - 1] = left.keys.pop()
        node.values[index - 1] = left.values.pop()
        if not left.is_leaf:
            child.children.insert(0, left.children.pop())
        self._write(node)
        self._write(child)
        self._write(left)
        self.stats.bump("btree.borrow")

    def _borrow_from_right(self, node: _Node, index: int) -> None:
        child = node.children[index]
        right = node.children[index + 1]
        child.keys.append(node.keys[index])
        child.values.append(node.values[index])
        node.keys[index] = right.keys.pop(0)
        node.values[index] = right.values.pop(0)
        if not right.is_leaf:
            child.children.append(right.children.pop(0))
        self._write(node)
        self._write(child)
        self._write(right)
        self.stats.bump("btree.borrow")

    def _merge_children(self, node: _Node, index: int) -> None:
        child = node.children[index]
        sibling = node.children[index + 1]
        child.keys.append(node.keys.pop(index))
        child.values.append(node.values.pop(index))
        child.keys.extend(sibling.keys)
        child.values.extend(sibling.values)
        child.children.extend(sibling.children)
        node.children.pop(index + 1)
        self._write(node)
        self._write(child)
        self.stats.bump("btree.merge")

    def _max_of(self, node: _Node) -> Tuple[object, object]:
        self._read(node)
        while not node.is_leaf:
            node = node.children[-1]
            self._read(node)
        return node.keys[-1], node.values[-1]

    def _min_of(self, node: _Node) -> Tuple[object, object]:
        self._read(node)
        while not node.is_leaf:
            node = node.children[0]
            self._read(node)
        return node.keys[0], node.values[0]

    # ------------------------------------------------------------------ #
    # Helpers
    # ------------------------------------------------------------------ #

    def _search_node(self, node: _Node, key: object) -> Optional[Tuple[_Node, int]]:
        self._read(node)
        index = self._lower_bound(node.keys, key)
        if index < len(node.keys) and node.keys[index] == key:
            return node, index
        if node.is_leaf:
            return None
        return self._search_node(node.children[index], key)

    @staticmethod
    def _lower_bound(keys: List[object], key: object) -> int:
        low, high = 0, len(keys)
        while low < high:
            mid = (low + high) // 2
            if keys[mid] < key:
                low = mid + 1
            else:
                high = mid
        return low

    @staticmethod
    def _upper_bound(keys: List[object], key: object) -> int:
        low, high = 0, len(keys)
        while low < high:
            mid = (low + high) // 2
            if key < keys[mid]:
                high = mid
            else:
                low = mid + 1
        return low

    def _walk(self, node: _Node) -> Iterator[Tuple[object, object]]:
        if node.is_leaf:
            yield from zip(node.keys, node.values)
            return
        for index, key in enumerate(node.keys):
            yield from self._walk(node.children[index])
            yield key, node.values[index]
        yield from self._walk(node.children[-1])

    def _read(self, _node: _Node) -> None:
        self.stats.reads += 1

    def _write(self, _node: _Node) -> None:
        self.stats.writes += 1

    # ------------------------------------------------------------------ #
    # Validation
    # ------------------------------------------------------------------ #

    def check(self) -> None:
        """Verify the B-tree invariants; raises :class:`InvariantViolation`."""
        keys = [key for key, _value in self._walk(self._root)]
        if len(keys) != self._count:
            raise InvariantViolation("walk found %d keys, expected %d"
                                     % (len(keys), self._count))
        for previous, current in zip(keys, keys[1:]):
            if not previous < current:
                raise InvariantViolation("keys out of order: %r !< %r"
                                         % (previous, current))
        self._check_node(self._root, is_root=True)

    def _check_node(self, node: _Node, is_root: bool) -> int:
        t = self.min_degree
        if len(node.keys) > 2 * t - 1:
            raise InvariantViolation("node holds %d keys, max is %d"
                                     % (len(node.keys), 2 * t - 1))
        if not is_root and len(node.keys) < t - 1:
            raise InvariantViolation("non-root node holds %d keys, min is %d"
                                     % (len(node.keys), t - 1))
        if node.is_leaf:
            return 1
        if len(node.children) != len(node.keys) + 1:
            raise InvariantViolation("internal node has %d children for %d keys"
                                     % (len(node.children), len(node.keys)))
        depths = {self._check_node(child, is_root=False)
                  for child in node.children}
        if len(depths) != 1:
            raise InvariantViolation("leaves are not all at the same depth")
        return depths.pop() + 1
